"""Machine-model invariants and the exception hierarchy."""

import pytest

from repro import errors
from repro.config import (
    MB,
    fast_test,
    high_open_cost,
    origin2000,
)


# ---------------------------------------------------------------------------
# Machine models
# ---------------------------------------------------------------------------

def test_origin2000_shape_constants():
    m = origin2000()
    assert m.storage.n_controllers == 10
    # Reads faster than writes per stream (XFS buffered behaviour).
    assert m.storage.stream_read_bandwidth > m.storage.stream_write_bandwidth
    # Aggregate bandwidths land on the paper's Figure 6 axis.
    assert 100 * MB < m.aggregate_read_bandwidth() < 250 * MB
    assert 80 * MB < m.aggregate_write_bandwidth() < 180 * MB


def test_high_open_cost_differs_only_in_metadata_costs():
    base, costly = origin2000(), high_open_cost()
    assert costly.storage.file_open_cost > 10 * base.storage.file_open_cost
    assert costly.storage.file_view_cost > 10 * base.storage.file_view_cost
    assert costly.storage.stream_read_bandwidth == base.storage.stream_read_bandwidth
    assert costly.network.latency == base.network.latency


def test_transfer_and_stream_time_arithmetic():
    m = fast_test()
    t = m.network.transfer_time(1000)
    assert t == pytest.approx(m.network.latency + 1000 / m.network.bandwidth)
    s = m.storage.stream_time(1000, write=True, runs=3)
    expect = (
        m.storage.request_overhead
        + 2 * m.storage.run_overhead
        + 1000 / m.storage.stream_write_bandwidth
    )
    assert s == pytest.approx(expect)


def test_statement_time_scales_with_rows():
    m = origin2000()
    t1 = m.database.statement_time(rows=1)
    t100 = m.database.statement_time(rows=100)
    assert t100 > t1
    assert t100 - t1 == pytest.approx(99 * m.database.row_cost)


def test_with_helpers_return_modified_copies():
    m = origin2000()
    m2 = m.with_storage(n_controllers=3)
    assert m2.storage.n_controllers == 3
    assert m.storage.n_controllers == 10  # original untouched
    m3 = m.with_network(latency=1.0)
    assert m3.network.latency == 1.0
    m4 = m.with_collective_io(cb_nodes=5)
    assert m4.collective_io.cb_nodes == 5


def test_compute_model_helpers():
    m = fast_test()
    assert m.compute.elements(100, 2.0) == pytest.approx(200 * m.compute.element_op)
    assert m.compute.copy_time(1000) == pytest.approx(1000 / m.compute.memcpy_bandwidth)


# ---------------------------------------------------------------------------
# Exception hierarchy
# ---------------------------------------------------------------------------

def test_every_error_derives_from_repro_error():
    leaves = [
        errors.SimDeadlockError, errors.SimProcessCrashed,
        errors.MPITruncationError, errors.MPIInvalidRank,
        errors.MPICollectiveMismatch, errors.DatatypeError,
        errors.FileNotFound, errors.FileExists, errors.InvalidFileHandle,
        errors.AccessModeError, errors.MPIIOError,
        errors.SQLSyntaxError, errors.SQLTypeError, errors.TableNotFound,
        errors.TableExists, errors.ColumnNotFound,
        errors.PartitionError, errors.MeshError,
        errors.SDMStateError, errors.SDMUnknownDataset,
        errors.SDMHistoryMismatch,
    ]
    for exc in leaves:
        assert issubclass(exc, errors.ReproError), exc


def test_subsystem_umbrellas():
    assert issubclass(errors.SimDeadlockError, errors.SimError)
    assert issubclass(errors.MPIInvalidRank, errors.MPIError)
    assert issubclass(errors.AccessModeError, errors.MPIIOError)
    assert issubclass(errors.MPIIOError, errors.PFSError)
    assert issubclass(errors.SQLSyntaxError, errors.MetaDBError)
    assert issubclass(errors.SDMHistoryMismatch, errors.SDMError)


def test_catching_at_subsystem_level():
    with pytest.raises(errors.MetaDBError):
        raise errors.TableNotFound("t")
    with pytest.raises(errors.ReproError):
        raise errors.SDMStateError("s")
