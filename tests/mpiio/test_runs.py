"""Unit and property tests for the run-coalescing layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpiio.runs import (
    coalesce_positions,
    coalesce_runs,
    extract_runs,
    gather_elements,
)


def arr(*vals):
    return np.array(vals, dtype=np.int64)


# ---------------------------------------------------------------------------
# coalesce_runs
# ---------------------------------------------------------------------------

def test_empty_runs_coalesce_to_nothing():
    coff, clen, owner = coalesce_runs(arr(), arr())
    assert len(coff) == len(clen) == len(owner) == 0


def test_single_run_passes_through():
    coff, clen, owner = coalesce_runs(arr(40), arr(8))
    assert coff.tolist() == [40] and clen.tolist() == [8]
    assert owner.tolist() == [0]


def test_all_adjacent_runs_become_one():
    coff, clen, owner = coalesce_runs(arr(0, 8, 16, 24), arr(8, 8, 8, 8))
    assert coff.tolist() == [0] and clen.tolist() == [32]
    assert owner.tolist() == [0, 0, 0, 0]


def test_all_sparse_runs_stay_separate():
    coff, clen, owner = coalesce_runs(arr(0, 100, 200), arr(8, 8, 8))
    assert coff.tolist() == [0, 100, 200]
    assert clen.tolist() == [8, 8, 8]
    assert owner.tolist() == [0, 1, 2]


def test_overlapping_runs_union():
    coff, clen, owner = coalesce_runs(arr(0, 4, 30), arr(10, 10, 5))
    assert coff.tolist() == [0, 30]
    assert clen.tolist() == [14, 5]
    assert owner.tolist() == [0, 0, 1]


def test_contained_run_does_not_shrink_reach():
    # A short run inside a long one must not re-open the interval.
    coff, clen, owner = coalesce_runs(arr(0, 2, 10), arr(20, 2, 4))
    assert coff.tolist() == [0] and clen.tolist() == [20]
    assert owner.tolist() == [0, 0, 0]


def test_small_gap_bridged_large_gap_not():
    coff, clen, _ = coalesce_runs(arr(0, 12, 100), arr(8, 8, 8), gap=4)
    assert coff.tolist() == [0, 100]
    assert clen.tolist() == [20, 8]  # the 4-byte hole is inside the run


def test_huge_gap_merges_everything():
    coff, clen, owner = coalesce_runs(arr(0, 500, 9000), arr(8, 8, 8),
                                      gap=1 << 30)
    assert coff.tolist() == [0] and clen.tolist() == [9008]
    assert owner.tolist() == [0, 0, 0]


def test_zero_gap_merge_of_disjoint_runs_is_lossless():
    off, ln = arr(0, 8, 40, 48, 56), arr(8, 8, 8, 8, 8)
    coff, clen, _ = coalesce_runs(off, ln)
    assert int(clen.sum()) == int(ln.sum())


# ---------------------------------------------------------------------------
# coalesce_positions
# ---------------------------------------------------------------------------

def test_positions_empty():
    coff, clen, owner = coalesce_positions(arr(), 8)
    assert len(coff) == len(owner) == 0


def test_positions_single():
    coff, clen, owner = coalesce_positions(arr(72), 8)
    assert coff.tolist() == [72] and clen.tolist() == [8]


def test_positions_adjacent_elements_merge():
    coff, clen, owner = coalesce_positions(arr(0, 8, 16, 40, 48), 8)
    assert coff.tolist() == [0, 40]
    assert clen.tolist() == [24, 16]
    assert owner.tolist() == [0, 0, 0, 1, 1]


def test_positions_gap_bridging():
    # Holes of exactly one element (8 bytes) bridge at gap=8, not gap=0.
    pos = arr(0, 16, 32)
    coff0, clen0, _ = coalesce_positions(pos, 8, gap=0)
    assert coff0.tolist() == [0, 16, 32]
    coff8, clen8, _ = coalesce_positions(pos, 8, gap=8)
    assert coff8.tolist() == [0] and clen8.tolist() == [40]


# ---------------------------------------------------------------------------
# extraction round-trips
# ---------------------------------------------------------------------------

def _file_bytes(n=10_000, seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, size=n, dtype=np.uint8
    )


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 60), st.integers(0, 25)),
             min_size=0, max_size=25),
    st.sampled_from([0, 1, 7, 64, 1 << 20]),
)
def test_coalesce_extract_roundtrip_property(spec, gap):
    """coalesce + read-span + extract returns exactly the requested bytes
    for any sorted non-overlapping run list and any gap."""
    data = _file_bytes()
    offsets, lengths = [], []
    cursor = 0
    for hole, ln in spec:
        cursor += hole
        offsets.append(cursor)
        lengths.append(ln)
        cursor += ln
    off, ln = arr(*offsets), arr(*lengths)
    coff, clen, owner = coalesce_runs(off, ln, gap=gap)
    # Simulate the coalesced read: concatenated coalesced runs.
    blob = (
        np.concatenate([data[o : o + l] for o, l in zip(coff, clen)])
        if len(coff) else np.empty(0, dtype=np.uint8)
    )
    got = extract_runs(blob, coff, clen, off, ln, owner)
    expected = (
        np.concatenate([data[o : o + l] for o, l in zip(off, ln)])
        if len(off) else np.empty(0, dtype=np.uint8)
    )
    np.testing.assert_array_equal(got, expected)
    # Coalesced runs are sorted, non-overlapping, and separated by more
    # than the gap.
    if len(coff) > 1:
        assert (coff[1:] > coff[:-1] + clen[:-1] + gap).all()


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.integers(0, 500), min_size=0, max_size=40, unique=True),
    st.sampled_from([1, 4, 8]),
    st.sampled_from([0, 8, 1 << 20]),
)
def test_positions_gather_roundtrip_property(raw_pos, width, gap):
    """coalesce_positions + gather_elements == per-element direct reads."""
    data = _file_bytes()
    pos = np.sort(np.array(raw_pos, dtype=np.int64)) * width
    coff, clen, owner = coalesce_positions(pos, width, gap=gap)
    blob = (
        np.concatenate([data[o : o + l] for o, l in zip(coff, clen)])
        if len(coff) else np.empty(0, dtype=np.uint8)
    )
    got = gather_elements(blob, coff, clen, pos, width, owner)
    expected = (
        np.concatenate([data[p : p + width] for p in pos])
        if len(pos) else np.empty(0, dtype=np.uint8)
    )
    np.testing.assert_array_equal(got, expected)


def test_gather_elements_with_bridged_holes():
    data = _file_bytes()
    pos = arr(0, 24, 32)  # hole of 16 bytes between first and second
    coff, clen, owner = coalesce_positions(pos, 8, gap=16)
    assert len(coff) == 1  # everything bridged
    blob = data[: int(clen[0])]
    got = gather_elements(blob, coff, clen, pos, 8, owner)
    np.testing.assert_array_equal(
        got, np.concatenate([data[0:8], data[24:32], data[32:40]])
    )
