"""End-to-end MPI-IO File tests under mpirun: correctness of independent and
collective paths against numpy references."""

import numpy as np
import pytest

from repro.config import fast_test, origin2000
from repro.dtypes import FLOAT64, INT32, Contiguous, IndexedBlock, Vector
from repro.errors import FileExists, FileNotFound, MPIIOError, SimProcessCrashed
from repro.mpiio import (
    File,
    MODE_CREATE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
)
from repro.mpi import mpirun
from repro.pfs import FileSystem


def fs_services(sim, machine):
    return {"fs": FileSystem(sim, machine)}


def run(fn, nprocs, machine=None):
    return mpirun(fn, nprocs, machine=machine or fast_test(), services=fs_services)


def test_collective_contiguous_write_then_read():
    """Each rank writes its block; file equals the concatenation."""
    n = 100

    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "blocks.dat", MODE_CREATE | MODE_WRONLY)
        data = np.full(n, ctx.rank, dtype=np.float64)
        f.write_at_all(ctx.rank * n * 8, data)
        f.close()
        f = File.open(ctx.comm, fs, "blocks.dat", MODE_RDONLY)
        out = np.empty(n, dtype=np.float64)
        f.read_at_all(ctx.rank * n * 8, out)
        f.close()
        return out

    job = run(program, 4)
    for r, out in enumerate(job.values):
        np.testing.assert_array_equal(out, np.full(n, r, dtype=np.float64))
    fs = job.services["fs"]
    whole = fs.lookup("blocks.dat").store.read(0, 4 * n * 8).view(np.float64)
    np.testing.assert_array_equal(whole, np.repeat([0.0, 1.0, 2.0, 3.0], n))


def test_collective_interleaved_write_via_vector_view():
    """Round-robin element interleaving: rank r owns elements r, r+P, ..."""
    per_rank = 50

    def program(ctx):
        fs = ctx.service("fs")
        P = ctx.size
        f = File.open(ctx.comm, fs, "inter.dat", MODE_CREATE | MODE_WRONLY)
        ft = Contiguous(1, FLOAT64).with_extent(8 * P)
        f.set_view(disp=8 * ctx.rank, etype=FLOAT64, filetype=ft)
        data = np.arange(per_rank, dtype=np.float64) * 10 + ctx.rank
        f.write_at_all(0, data)
        f.close()
        return None

    job = run(program, 4)
    fs = job.services["fs"]
    whole = fs.lookup("inter.dat").store.read(0, 4 * per_rank * 8).view(np.float64)
    expect = np.empty(4 * per_rank)
    for r in range(4):
        expect[r::4] = np.arange(per_rank) * 10 + r
    np.testing.assert_array_equal(whole, expect)


def test_collective_irregular_map_array_roundtrip():
    """IndexedBlock views: each rank reads an arbitrary subset of a global
    array written earlier — the SDM import pattern."""
    n_global = 1000

    def program(ctx):
        fs = ctx.service("fs")
        rng = np.random.default_rng(100 + ctx.rank)
        mine = np.sort(
            rng.choice(n_global, size=120, replace=False)
        ).astype(np.int64)
        if ctx.rank == 0:
            # Rank 0 seeds the file independently first.
            f0 = File.open(ctx.comm, fs, "glob.dat", MODE_CREATE | MODE_RDWR)
        else:
            f0 = File.open(ctx.comm, fs, "glob.dat", MODE_CREATE | MODE_RDWR)
        if ctx.rank == 0:
            f0.write_at(0, np.arange(n_global, dtype=np.float64))
        f0.close()
        f = File.open(ctx.comm, fs, "glob.dat", MODE_RDONLY)
        f.set_view(etype=FLOAT64, filetype=IndexedBlock(1, mine, FLOAT64))
        out = np.empty(len(mine), dtype=np.float64)
        f.read_at_all(0, out)
        f.close()
        return (mine, out)

    job = run(program, 4)
    for mine, out in job.values:
        np.testing.assert_array_equal(out, mine.astype(np.float64))


def test_collective_overlapping_writes_deterministic():
    """Ghost-style overlap: every rank writes element 0; highest rank wins."""

    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "ov.dat", MODE_CREATE | MODE_WRONLY)
        data = np.array([float(ctx.rank + 1)])
        f.write_at_all(0, data)
        f.close()
        return None

    job = run(program, 4)
    fs = job.services["fs"]
    val = fs.lookup("ov.dat").store.read(0, 8).view(np.float64)[0]
    assert val == 4.0


def test_independent_write_read_with_sieving():
    """Per-rank interleaved independent access (data sieving path)."""

    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "ind.dat", MODE_CREATE | MODE_RDWR)
        # Every rank owns every size-th double, offset by its rank.
        ft = Contiguous(1, FLOAT64).with_extent(8 * ctx.size)
        f.set_view(disp=8 * ctx.rank, etype=FLOAT64, filetype=ft)
        data = np.arange(20, dtype=np.float64) + 100 * ctx.rank
        f.write_at(0, data)
        ctx.comm.barrier()
        out = np.empty(20, dtype=np.float64)
        f.read_at(0, out)
        f.close()
        return out

    job = run(program, 2)
    for r, out in enumerate(job.values):
        np.testing.assert_array_equal(out, np.arange(20, dtype=np.float64) + 100 * r)


def test_individual_file_pointer_write_read():
    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "ptr.dat", MODE_CREATE | MODE_RDWR)
        if ctx.rank == 0:
            f.write(np.arange(4, dtype=np.int32))
            f.write(np.arange(4, 8, dtype=np.int32))
            assert f.get_position() == 32  # bytes (etype BYTE)
        ctx.comm.barrier()
        f.seek(0)
        out = np.empty(8, dtype=np.int32)
        f.read(out)
        f.close()
        return out

    job = run(program, 2)
    for out in job.values:
        np.testing.assert_array_equal(out, np.arange(8, dtype=np.int32))


def test_open_missing_without_create_fails_on_all_ranks():
    def program(ctx):
        fs = ctx.service("fs")
        File.open(ctx.comm, fs, "nope.dat", MODE_RDONLY)

    with pytest.raises(SimProcessCrashed) as ei:
        run(program, 2)
    assert isinstance(ei.value.__cause__, FileNotFound)


def test_open_excl_on_existing_fails():
    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "x.dat", MODE_CREATE | MODE_WRONLY)
        f.close()
        File.open(ctx.comm, fs, "x.dat", MODE_CREATE | MODE_EXCL | MODE_WRONLY)

    with pytest.raises(SimProcessCrashed) as ei:
        run(program, 2)
    assert isinstance(ei.value.__cause__, FileExists)


def test_write_on_rdonly_rejected():
    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "ro.dat", MODE_CREATE | MODE_RDONLY)
        f.write_at(0, np.zeros(1))

    with pytest.raises(SimProcessCrashed):
        run(program, 2)


def test_operations_on_closed_file_rejected():
    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "c.dat", MODE_CREATE | MODE_WRONLY)
        f.close()
        f.write_at(0, np.zeros(1))

    with pytest.raises(SimProcessCrashed) as ei:
        run(program, 2)
    assert isinstance(ei.value.__cause__, MPIIOError)


def test_collective_beats_independent_for_interleaved_pattern():
    """The paper's core claim: collective I/O >> per-process I/O for
    interleaved irregular access."""
    per_rank = 2000
    P = 8

    def collective(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "c.dat", MODE_CREATE | MODE_WRONLY)
        ft = Contiguous(1, FLOAT64).with_extent(8 * ctx.size)
        f.set_view(disp=8 * ctx.rank, etype=FLOAT64, filetype=ft)
        t0 = ctx.now
        f.write_at_all(0, np.zeros(per_rank, dtype=np.float64))
        dt = ctx.now - t0
        f.close()
        return dt

    def independent(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "i.dat", MODE_CREATE | MODE_WRONLY)
        ft = Contiguous(1, FLOAT64).with_extent(8 * ctx.size)
        f.set_view(disp=8 * ctx.rank, etype=FLOAT64, filetype=ft)
        t0 = ctx.now
        f.write_at(0, np.zeros(per_rank, dtype=np.float64))
        dt = ctx.now - t0
        f.close()
        return dt

    m = origin2000()
    t_coll = max(mpirun(collective, P, machine=m, services=fs_services).values)
    t_ind = max(mpirun(independent, P, machine=m, services=fs_services).values)
    assert t_coll < t_ind


def test_cb_buffer_size_hint_controls_request_count():
    def make_program(cb):
        def program(ctx):
            fs = ctx.service("fs")
            f = File.open(
                ctx.comm, fs, "h.dat", MODE_CREATE | MODE_WRONLY,
                hints={"cb_buffer_size": cb, "cb_nodes": 1},
            )
            f.write_at_all(ctx.rank * 8000, np.zeros(1000, dtype=np.float64))
            f.close()
            return None
        return program

    job_small = run(make_program(4096), 2)
    n_small = job_small.services["fs"].n_requests
    job_big = run(make_program(1 << 20), 2)
    n_big = job_big.services["fs"].n_requests
    assert n_small > n_big


def test_adjacent_runs_coalesce_at_source_by_default():
    """Exactly-adjacent runs merge before the collective exchange even at
    the default coalesce_gap of 0 (the lossless merge), and gap-tolerant
    merging bridges holes when hinted — bytes identical in every case."""
    n = 64

    def make_program(hints):
        def program(ctx):
            fs = ctx.service("fs")
            f = File.open(ctx.comm, fs, "runs.dat",
                          MODE_CREATE | MODE_RDWR, hints=hints)
            whole = np.arange(n * ctx.size, dtype=np.uint8)
            if ctx.rank == 0:
                f.write_runs([0], [len(whole)], whole)
            ctx.comm.barrier()
            # n exactly-adjacent 1-byte runs per rank.
            off = np.arange(n, dtype=np.int64) + ctx.rank * n
            ln = np.ones(n, dtype=np.int64)
            before = fs.runs_submitted
            ctx.comm.barrier()  # every rank snapshots before any read starts
            got = f.read_runs_at_all(off, ln)
            ctx.comm.barrier()  # every rank's runs are counted
            submitted = fs.runs_submitted - before
            f.close()
            return got, submitted

        return program

    for hints in (None, {"coalesce_gap": 8}):
        job = run(make_program(hints), 2)
        for r, (got, _s) in enumerate(job.values):
            np.testing.assert_array_equal(
                got, np.arange(n, dtype=np.uint8) + r * n
            )
        # Each rank submitted one merged run, not n per-byte runs.
        assert job.values[0][1] == 2, job.values[0][1]


def test_gap_hint_bridges_holes_in_collective_read():
    """With coalesce_gap, sparse runs merge into one covering request and
    the hole bytes are discarded before the caller sees them."""

    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "sparse.dat", MODE_CREATE | MODE_RDWR,
                      hints={"coalesce_gap": 1024})
        whole = np.arange(256, dtype=np.uint8)
        if ctx.rank == 0:
            f.write_runs([0], [len(whole)], whole)
        ctx.comm.barrier()
        off = np.array([8, 64, 200], dtype=np.int64) + ctx.rank
        ln = np.array([4, 4, 4], dtype=np.int64)
        before = fs.runs_submitted
        ctx.comm.barrier()  # every rank snapshots before any read starts
        got = f.read_runs_at_all(off, ln)
        ctx.comm.barrier()  # every rank's runs are counted
        submitted = fs.runs_submitted - before
        f.close()
        return got, submitted, off

    job = run(program, 2)
    whole = np.arange(256, dtype=np.uint8)
    for got, _s, off in job.values:
        np.testing.assert_array_equal(
            got, np.concatenate([whole[o : o + 4] for o in off])
        )
    assert job.values[0][1] == 2  # one bridged run per rank
