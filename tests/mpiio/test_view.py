"""FileView: mapping visible-data windows to file byte runs."""

import numpy as np
import pytest

from repro.dtypes import BYTE, FLOAT64, INT32, Contiguous, IndexedBlock, Vector
from repro.errors import MPIIOError
from repro.mpiio import FileView


def runs(view, off, n):
    o, l = view.runs_for(off, n)
    return list(zip(o.tolist(), l.tolist()))


def test_default_view_is_dense_bytes():
    v = FileView()
    assert v.dense
    assert runs(v, 0, 10) == [(0, 10)]
    assert runs(v, 100, 5) == [(100, 5)]


def test_displacement_shifts_everything():
    v = FileView(disp=1000)
    assert runs(v, 0, 8) == [(1000, 8)]


def test_vector_filetype_round_robin():
    # Rank 1 of 4: every 4th double, starting at element 1.
    ft = Vector(count=1, blocklength=1, stride=1, base=FLOAT64).with_extent(32)
    v = FileView(disp=8, etype=FLOAT64, filetype=ft)
    assert v.tile_size == 8 and v.tile_extent == 32
    assert runs(v, 0, 24) == [(8, 8), (40, 8), (72, 8)]


def test_partial_tile_clipping():
    # Filetype: 2 doubles data then 2 doubles hole (extent 32B, size 16B).
    ft = Contiguous(2, FLOAT64).with_extent(32)
    v = FileView(etype=FLOAT64, filetype=ft)
    # Start mid-tile: second double of tile 0, first double of tile 1.
    assert runs(v, 8, 16) == [(8, 8), (32, 8)]


def test_many_middle_tiles_vectorized():
    ft = Contiguous(1, FLOAT64).with_extent(64)
    v = FileView(etype=FLOAT64, filetype=ft)
    o, l = v.runs_for(0, 8 * 1000)
    assert len(o) == 1000
    assert o[0] == 0 and o[-1] == 64 * 999
    assert int(l.sum()) == 8000


def test_indexed_block_map_array_view():
    map_array = np.array([5, 2, 9], dtype=np.int64)
    # Views require monotone displacements: sort the map first (SDM does).
    ft = IndexedBlock(1, np.sort(map_array), FLOAT64)
    v = FileView(etype=FLOAT64, filetype=ft)
    assert runs(v, 0, 24) == [(16, 8), (40, 8), (72, 8)]


def test_nonmonotonic_filetype_rejected():
    ft = IndexedBlock(1, np.array([5, 2]), FLOAT64)
    with pytest.raises(MPIIOError):
        FileView(etype=FLOAT64, filetype=ft)


def test_etype_filetype_size_divisibility_enforced():
    ft = Contiguous(3, BYTE)
    with pytest.raises(MPIIOError):
        FileView(etype=INT32, filetype=ft)


def test_zero_length_request():
    v = FileView()
    o, l = v.runs_for(50, 0)
    assert len(o) == 0 and len(l) == 0


def test_negative_request_rejected():
    v = FileView()
    with pytest.raises(MPIIOError):
        v.runs_for(-1, 4)


def test_runs_conserve_bytes_property():
    rng = np.random.default_rng(3)
    disp = np.sort(rng.choice(10_000, size=500, replace=False))
    ft = IndexedBlock(1, disp, FLOAT64)
    v = FileView(etype=FLOAT64, filetype=ft)
    for start, n in [(0, 8), (8, 4000 - 8), (16, 500 * 8 - 16), (0, 500 * 8)]:
        o, l = v.runs_for(start, n)
        assert int(l.sum()) == n
        assert (l > 0).all()
        # Sorted, non-overlapping.
        assert (o[1:] >= o[:-1] + l[:-1]).all()
