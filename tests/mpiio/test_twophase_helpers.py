"""Unit tests for the two-phase building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpiio.twophase import (
    file_domain_bounds,
    split_runs_by_bounds,
    union_runs,
)
from repro.pfs.scheduler import size_batches


# ---------------------------------------------------------------------------
# file_domain_bounds
# ---------------------------------------------------------------------------

def test_domain_bounds_cover_range_exactly():
    b = file_domain_bounds(100, 1000, naggs=4, align=64)
    assert b[0] == 100 and b[-1] == 1000
    assert (np.diff(b) >= 0).all()
    assert len(b) == 5


def test_domain_bounds_interior_aligned():
    b = file_domain_bounds(0, 1_000_000, naggs=7, align=4096)
    for x in b[1:-1]:
        assert x % 4096 == 0


def test_domain_bounds_empty_range_rejected():
    with pytest.raises(ValueError):
        file_domain_bounds(10, 10, naggs=2, align=8)


def test_domain_bounds_single_aggregator():
    b = file_domain_bounds(5, 50, naggs=1, align=1024)
    assert b.tolist() == [5, 50]


# ---------------------------------------------------------------------------
# split_runs_by_bounds
# ---------------------------------------------------------------------------

def test_split_simple_runs_into_domains():
    off = np.array([0, 100, 200], dtype=np.int64)
    ln = np.array([50, 50, 50], dtype=np.int64)
    bounds = np.array([0, 150, 250], dtype=np.int64)
    parts = split_runs_by_bounds(off, ln, bounds)
    assert [p[0].tolist() for p in parts] == [[0, 100], [200]]
    assert [p[1].tolist() for p in parts] == [[50, 50], [50]]


def test_split_crossing_run_clipped_both_sides():
    off = np.array([90], dtype=np.int64)
    ln = np.array([40], dtype=np.int64)
    bounds = np.array([0, 100, 200], dtype=np.int64)
    parts = split_runs_by_bounds(off, ln, bounds)
    assert parts[0][0].tolist() == [90] and parts[0][1].tolist() == [10]
    assert parts[1][0].tolist() == [100] and parts[1][1].tolist() == [30]


def test_split_empty_domain():
    off = np.array([500], dtype=np.int64)
    ln = np.array([10], dtype=np.int64)
    bounds = np.array([0, 100, 600], dtype=np.int64)
    parts = split_runs_by_bounds(off, ln, bounds)
    assert len(parts[0][0]) == 0
    assert parts[1][0].tolist() == [500]


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 50), st.integers(1, 30)), min_size=1, max_size=20),
    st.integers(1, 6),
)
def test_split_conserves_bytes_and_order_property(spec, naggs):
    offsets, lengths = [], []
    cursor = 0
    for gap, ln in spec:
        cursor += gap
        offsets.append(cursor)
        cursor += ln
        lengths.append(ln)
    off = np.array(offsets, dtype=np.int64)
    ln = np.array(lengths, dtype=np.int64)
    lo, hi = int(off[0]), int(off[-1] + ln[-1])
    bounds = file_domain_bounds(lo, hi, naggs, align=1)
    parts = split_runs_by_bounds(off, ln, bounds)
    # Bytes conserved.
    assert sum(int(p[1].sum()) for p in parts) == int(ln.sum())
    # Concatenation in domain order reproduces a sorted, non-overlapping
    # cover of the original byte set.
    all_off = np.concatenate([p[0] for p in parts])
    all_len = np.concatenate([p[1] for p in parts])
    orig_bytes = set()
    for o, l in zip(off.tolist(), ln.tolist()):
        orig_bytes.update(range(o, o + l))
    split_bytes = set()
    for o, l in zip(all_off.tolist(), all_len.tolist()):
        split_bytes.update(range(o, o + l))
    assert split_bytes == orig_bytes
    assert (all_off[1:] >= all_off[:-1] + all_len[:-1]).all()


# ---------------------------------------------------------------------------
# union_runs
# ---------------------------------------------------------------------------

def test_union_merges_overlaps_and_adjacency():
    off = np.array([0, 10, 5, 30], dtype=np.int64)
    ln = np.array([10, 5, 10, 5], dtype=np.int64)
    uo, ul = union_runs(off, ln)
    assert uo.tolist() == [0, 30]
    assert ul.tolist() == [15, 5]


def test_union_of_empty():
    uo, ul = union_runs(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    assert len(uo) == 0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 200), st.integers(1, 40)), min_size=1, max_size=30)
)
def test_union_runs_property(spec):
    off = np.array([o for o, _ in spec], dtype=np.int64)
    ln = np.array([l for _, l in spec], dtype=np.int64)
    uo, ul = union_runs(off, ln)
    covered = set()
    for o, l in zip(off.tolist(), ln.tolist()):
        covered.update(range(o, o + l))
    union_set = set()
    for o, l in zip(uo.tolist(), ul.tolist()):
        union_set.update(range(o, o + l))
    assert union_set == covered
    # Maximal: strictly separated intervals.
    assert (uo[1:] > uo[:-1] + ul[:-1]).all() if len(uo) > 1 else True


# ---------------------------------------------------------------------------
# size_batches (repro.pfs.scheduler)
# ---------------------------------------------------------------------------

def test_batches_split_large_runs():
    uo = np.array([0], dtype=np.int64)
    ul = np.array([100], dtype=np.int64)
    batches = size_batches(uo, ul, max_bytes=30)
    sizes = [int(l.sum()) for _, l in batches]
    assert sizes == [30, 30, 30, 10]
    assert batches[0][0].tolist() == [0]
    assert batches[1][0].tolist() == [30]


def test_batches_group_small_runs():
    uo = np.array([0, 100, 200, 300], dtype=np.int64)
    ul = np.array([10, 10, 10, 10], dtype=np.int64)
    batches = size_batches(uo, ul, max_bytes=25)
    sizes = [int(l.sum()) for _, l in batches]
    assert sum(sizes) == 40
    assert all(s <= 25 for s in sizes)
    assert len(batches) == 2


def _reference_size_batches(uo, ul, cb_buffer_size):
    """The pre-vectorization per-run while-loop, kept as the oracle."""
    batches = []
    cur_off, cur_len, cur_bytes = [], [], 0
    for o, l in zip(uo.tolist(), ul.tolist()):
        while l > 0:
            room = cb_buffer_size - cur_bytes
            if room == 0:
                batches.append((np.array(cur_off, dtype=np.int64),
                                np.array(cur_len, dtype=np.int64)))
                cur_off, cur_len, cur_bytes = [], [], 0
                room = cb_buffer_size
            take = min(l, room)
            cur_off.append(o)
            cur_len.append(take)
            cur_bytes += take
            o += take
            l -= take
    if cur_off:
        batches.append((np.array(cur_off, dtype=np.int64),
                        np.array(cur_len, dtype=np.int64)))
    return batches


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 100), st.integers(0, 120)),
             min_size=0, max_size=30),
    st.integers(1, 257),
)
def test_vectorized_batches_match_reference_property(spec, cap):
    """The cumulative-sum split produces the reference walk's batches
    exactly — offsets, lengths, and batch boundaries — for any run list
    (zero-length runs included) and any buffer size."""
    offsets, lengths = [], []
    cursor = 0
    for hole, ln in spec:
        cursor += hole
        offsets.append(cursor)
        lengths.append(ln)
        cursor += ln
    uo = np.array(offsets, dtype=np.int64)
    ul = np.array(lengths, dtype=np.int64)
    got = size_batches(uo, ul, cap)
    want = _reference_size_batches(uo, ul, cap)
    assert len(got) == len(want)
    for (go, gl), (wo, wl) in zip(got, want):
        assert go.tolist() == wo.tolist()
        assert gl.tolist() == wl.tolist()
