"""File pointers, seek semantics, collective pointer ops, subarray views."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.dtypes import FLOAT64, INT32, Subarray
from repro.errors import MPIIOError, SimProcessCrashed
from repro.mpiio import File, FileView, MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.mpiio.file import SEEK_CUR, SEEK_END, SEEK_SET
from repro.mpi import mpirun
from repro.pfs import FileSystem


def fs_services(sim, machine):
    return {"fs": FileSystem(sim, machine)}


def run(fn, nprocs=2):
    return mpirun(fn, nprocs, machine=fast_test(), services=fs_services)


def test_seek_set_cur_end():
    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "s.dat", MODE_CREATE | MODE_RDWR)
        if ctx.rank == 0:
            f.write_at(0, np.zeros(100, dtype=np.uint8))
        ctx.comm.barrier()
        f.seek(10)
        assert f.get_position() == 10
        f.seek(5, SEEK_CUR)
        assert f.get_position() == 15
        f.seek(-20, SEEK_END)
        pos_from_end = f.get_position()
        f.seek(0, SEEK_SET)
        f.close()
        return pos_from_end

    job = run(program)
    assert job.values == [80, 80]


def test_seek_negative_and_bad_whence_rejected():
    def neg(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "n.dat", MODE_CREATE | MODE_RDWR)
        f.seek(-1)

    with pytest.raises(SimProcessCrashed) as ei:
        run(neg)
    assert isinstance(ei.value.__cause__, MPIIOError)

    def bad(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "w.dat", MODE_CREATE | MODE_RDWR)
        f.seek(0, 99)

    with pytest.raises(SimProcessCrashed) as ei:
        run(bad)
    assert isinstance(ei.value.__cause__, MPIIOError)


def test_collective_pointer_ops_write_all_read_all():
    """write_all/read_all: each rank's individual pointer advances in etype
    units while the collective machinery handles the data."""

    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "ptr.dat", MODE_CREATE | MODE_RDWR)
        # Per-rank disjoint blocks via view displacement.
        f.set_view(disp=ctx.rank * 64, etype=FLOAT64)
        f.write_all(np.full(4, float(ctx.rank)))        # elements 0..3
        f.write_all(np.full(4, float(ctx.rank) + 10))   # elements 4..7
        assert f.get_position() == 8
        f.seek(0)
        out = np.empty(8, dtype=np.float64)
        f.read_all(out)
        f.close()
        return out

    job = run(program)
    for r, out in enumerate(job.values):
        np.testing.assert_array_equal(out[:4], np.full(4, float(r)))
        np.testing.assert_array_equal(out[4:], np.full(4, float(r) + 10))


def test_subarray_filetype_through_mpiio():
    """A 2-D block decomposition via Subarray filetypes: the classic
    regular-application pattern at the MPI-IO level."""
    shape, sub = (8, 8), (4, 4)

    def program(ctx):
        fs = ctx.service("fs")
        starts = {0: (0, 0), 1: (0, 4), 2: (4, 0), 3: (4, 4)}[ctx.rank]
        ft = Subarray(shape, sub, starts, FLOAT64)
        f = File.open(ctx.comm, fs, "grid.dat", MODE_CREATE | MODE_RDWR)
        f.set_view(etype=FLOAT64, filetype=ft)
        block = np.full(16, float(ctx.rank))
        f.write_at_all(0, block)
        f.close()
        return None

    job = mpirun(program, 4, machine=fast_test(), services=fs_services)
    fs = job.services["fs"]
    grid = fs.lookup("grid.dat").store.read(0, 64 * 8).view(np.float64)
    grid = grid.reshape(shape)
    np.testing.assert_array_equal(grid[:4, :4], np.zeros((4, 4)))
    np.testing.assert_array_equal(grid[:4, 4:], np.ones((4, 4)))
    np.testing.assert_array_equal(grid[4:, :4], np.full((4, 4), 2.0))
    np.testing.assert_array_equal(grid[4:, 4:], np.full((4, 4), 3.0))


def test_get_view_reflects_installed_view():
    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "v.dat", MODE_CREATE | MODE_RDWR)
        default = f.get_view()
        f.set_view(disp=100, etype=FLOAT64)
        installed = f.get_view()
        f.close()
        return default.dense, default.disp, installed.disp, installed.etype.size

    job = run(program)
    assert job.values[0] == (True, 0, 100, 8)


def test_context_manager_closes_collectively():
    def program(ctx):
        fs = ctx.service("fs")
        with File.open(ctx.comm, fs, "cm.dat", MODE_CREATE | MODE_RDWR) as f:
            f.write_at_all(ctx.rank * 8, np.array([float(ctx.rank)]))
        return f.closed

    job = run(program)
    assert job.values == [True, True]


def test_double_close_rejected():
    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "d.dat", MODE_CREATE | MODE_RDWR)
        f.close()
        f.close()

    with pytest.raises(SimProcessCrashed) as ei:
        run(program)
    assert isinstance(ei.value.__cause__, MPIIOError)


def test_bad_amode_combinations_rejected():
    def both(ctx):
        fs = ctx.service("fs")
        File.open(ctx.comm, fs, "x", MODE_RDONLY | MODE_RDWR | MODE_CREATE)

    with pytest.raises(SimProcessCrashed) as ei:
        run(both)
    assert isinstance(ei.value.__cause__, MPIIOError)
