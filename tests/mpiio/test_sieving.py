"""Data-sieving internals: grouping policy and the RMW/fallback paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fast_test, origin2000
from repro.mpiio.hints import Hints
from repro.mpiio.sieving import independent_read, independent_write, sieve_groups
from repro.pfs import FileSystem
from repro.pfs.file import RD, RDWR, WR
from repro.simt import Simulator


def hints(gap=100, buf=1000):
    h = Hints.from_machine(fast_test())
    h.ds_threshold_gap = gap
    h.ds_buffer_size = buf
    return h


def groups_of(offsets, lengths, **kw):
    off = np.array(offsets, dtype=np.int64)
    ln = np.array(lengths, dtype=np.int64)
    return list(sieve_groups(off, ln, hints(**kw)))


# ---------------------------------------------------------------------------
# sieve_groups
# ---------------------------------------------------------------------------

def test_adjacent_runs_group_together():
    assert groups_of([0, 10, 20], [10, 10, 10]) == [(0, 3)]


def test_big_gap_splits_groups():
    assert groups_of([0, 500], [10, 10], gap=100) == [(0, 1), (1, 2)]


def test_span_limit_splits_groups():
    # First two runs span 610 <= 700 and group; the third would stretch the
    # span to 1210 > 700 and starts a new group.
    assert groups_of([0, 600, 1200], [10, 10, 10], gap=10_000, buf=700) == [
        (0, 2), (2, 3),
    ]


def test_single_run_single_group():
    assert groups_of([42], [8]) == [(0, 1)]


def test_empty_runs_no_groups():
    assert groups_of([], []) == []


def _reference_sieve_groups(offsets, lengths, hints):
    """The pre-vectorization per-run walk, kept as the grouping oracle."""
    n = len(offsets)
    if n == 0:
        return
    group_start = 0
    span_start = int(offsets[0])
    for i in range(1, n):
        prev_end = int(offsets[i - 1] + lengths[i - 1])
        gap = int(offsets[i]) - prev_end
        span = int(offsets[i] + lengths[i]) - span_start
        if gap > hints.ds_threshold_gap or span > hints.ds_buffer_size:
            yield group_start, i
            group_start = i
            span_start = int(offsets[i])
    yield group_start, n


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 400), st.integers(1, 200)),
             min_size=0, max_size=40),
    st.integers(0, 300),
    st.integers(1, 600),
)
def test_vectorized_groups_match_reference_property(spec, gap, buf):
    """The np.diff/searchsorted boundary computation yields exactly the
    groups of the per-run reference walk, for any runs and any hints."""
    offsets, lengths = [], []
    cursor = 0
    for hole, ln in spec:
        cursor += hole
        offsets.append(cursor)
        lengths.append(ln)
        cursor += ln
    off = np.array(offsets, dtype=np.int64)
    ln = np.array(lengths, dtype=np.int64)
    h = hints(gap=gap, buf=buf)
    assert list(sieve_groups(off, ln, h)) == list(
        _reference_sieve_groups(off, ln, h)
    )


# ---------------------------------------------------------------------------
# independent read/write paths
# ---------------------------------------------------------------------------

def run_one(fn, machine=None):
    sim = Simulator()
    fs = FileSystem(sim, machine or fast_test())
    p = sim.spawn(fn, fs)
    sim.run()
    return p.result, fs


def test_rmw_preserves_hole_bytes():
    """Sieved writes must not clobber data living in the holes."""

    def fn(proc, fs):
        h = fs.open(proc, "f", RDWR, create=True)
        fs.write_at(proc, h, 0, np.full(64, 7, dtype=np.uint8))
        # Write runs at 0..8 and 16..24, leaving 8..16 as a hole.
        off = np.array([0, 16], dtype=np.int64)
        ln = np.array([8, 8], dtype=np.int64)
        independent_write(fs, proc, h, off, ln, np.full(16, 1, dtype=np.uint8))
        return fs.read(proc, h, [0], [24])

    result, _ = run_one(fn)
    np.testing.assert_array_equal(result[:8], np.full(8, 1, dtype=np.uint8))
    np.testing.assert_array_equal(result[8:16], np.full(8, 7, dtype=np.uint8))
    np.testing.assert_array_equal(result[16:], np.full(8, 1, dtype=np.uint8))


def test_wronly_fallback_writes_per_run():
    def fn(proc, fs):
        h = fs.open(proc, "f", WR, create=True)
        off = np.array([0, 100, 200], dtype=np.int64)
        ln = np.array([4, 4, 4], dtype=np.int64)
        n0 = fs.n_requests
        independent_write(fs, proc, h, off, ln, np.arange(12, dtype=np.uint8))
        return fs.n_requests - n0

    n_requests, fs = run_one(fn)
    assert n_requests == 3  # one per run, no sieving possible
    np.testing.assert_array_equal(
        fs.lookup("f").store.read(100, 4), np.array([4, 5, 6, 7], dtype=np.uint8)
    )


def test_sieved_read_gathers_run_order():
    def fn(proc, fs):
        h = fs.open(proc, "f", RDWR, create=True)
        fs.write_at(proc, h, 0, np.arange(64, dtype=np.uint8))
        off = np.array([8, 32, 40], dtype=np.int64)
        ln = np.array([4, 4, 4], dtype=np.int64)
        return independent_read(fs, proc, h, off, ln)

    result, _ = run_one(fn)
    np.testing.assert_array_equal(
        result, np.concatenate([np.arange(8, 12), np.arange(32, 36),
                                np.arange(40, 44)]).astype(np.uint8)
    )


def test_sieving_issues_fewer_requests_than_runs():
    """50 nearby runs collapse into O(1) covering requests."""

    def fn(proc, fs):
        h = fs.open(proc, "f", RDWR, create=True)
        fs.write_at(proc, h, 0, np.zeros(1000, dtype=np.uint8))
        off = (np.arange(50, dtype=np.int64) * 16)
        ln = np.full(50, 8, dtype=np.int64)
        n0 = fs.n_requests
        independent_read(fs, proc, h, off, ln)
        return fs.n_requests - n0

    n_requests, _ = run_one(fn, machine=origin2000())
    assert n_requests <= 3
