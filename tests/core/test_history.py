"""History files: registration, reuse, process-count mismatch, async write."""

import numpy as np
import pytest

from repro.config import fast_test, origin2000
from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.core.layout import history_file_name
from repro.mesh import box_tet_mesh, install_mesh_file, mesh_file_layout
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

NPROCS = 4


def make_problem(cells=3, k=NPROCS):
    mesh = box_tet_mesh(cells, cells, cells)
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    part = multilevel_kway(g, k, seed=0)
    rng = np.random.default_rng(3)
    return mesh, part, rng.standard_normal(mesh.n_edges), rng.standard_normal(mesh.n_nodes)


def services_with_mesh(mesh, x, y, seed_from=None):
    base = sdm_services(seed_from=seed_from)

    def factory(sim, machine):
        services = base(sim, machine)
        if not services["fs"].exists("uns3d.msh"):
            install_mesh_file(
                services["fs"], "uns3d.msh", mesh.edge1, mesh.edge2,
                {"x": x}, {"y": y},
            )
        return services

    return factory


def partition_program(mesh, part, register=True):
    layout = mesh_file_layout(mesh.n_edges, mesh.n_nodes, ["x"], ["y"])

    def program(ctx):
        sdm = SDM(ctx, "fun3d")
        sdm.make_importlist(
            ["edge1", "edge2", "x", "y"], file_name="uns3d.msh",
            index_names=["edge1", "edge2"],
        )
        with ctx.phase("import_index"):
            chunk = sdm.import_index(
                "edge1", "edge2", layout.offset("edge1"),
                layout.offset("edge2"), mesh.n_edges,
            )
        with ctx.phase("index_distri"):
            local = sdm.partition_index(part, chunk)
        used_history = chunk is None
        if register and not used_history:
            sdm.index_registry(local)
        sdm.finalize()
        return used_history, local

    return program


def test_history_file_written_and_registered():
    mesh, part, x, y = make_problem()
    job = mpirun(partition_program(mesh, part), NPROCS, machine=fast_test(),
                 services=services_with_mesh(mesh, x, y))
    fs = job.services["fs"]
    fname = history_file_name("fun3d", mesh.n_edges, NPROCS)
    assert fs.exists(fname)
    assert fs.lookup(fname).size > 0
    from repro.metadb.schema import SDMTables

    tables = SDMTables(job.services["db"])
    rec = tables.find_history(mesh.n_edges, NPROCS)
    assert rec is not None and rec.file_name == fname
    for r in range(NPROCS):
        assert tables.history_rank(mesh.n_edges, NPROCS, r) is not None


def test_second_run_uses_history_and_matches_ring_result():
    mesh, part, x, y = make_problem()
    job1 = mpirun(partition_program(mesh, part), NPROCS, machine=fast_test(),
                  services=services_with_mesh(mesh, x, y))
    ring_results = [local for _, local in job1.values]
    assert all(not used for used, _ in job1.values)

    snap = snapshot_services(job1)
    job2 = mpirun(partition_program(mesh, part), NPROCS, machine=fast_test(),
                  services=services_with_mesh(mesh, x, y, seed_from=snap))
    for rank, (used_history, local) in enumerate(job2.values):
        assert used_history
        ref = ring_results[rank]
        np.testing.assert_array_equal(local.edge_map, ref.edge_map)
        np.testing.assert_array_equal(local.edge1, ref.edge1)
        np.testing.assert_array_equal(local.edge2, ref.edge2)
        np.testing.assert_array_equal(local.node_map, ref.node_map)
        np.testing.assert_array_equal(local.owned_nodes, ref.owned_nodes)


def test_history_not_used_for_different_process_count():
    """The paper's limitation: a history from P ranks is useless at P'."""
    mesh, part4, x, y = make_problem(k=4)
    job1 = mpirun(partition_program(mesh, part4), 4, machine=fast_test(),
                  services=services_with_mesh(mesh, x, y))
    snap = snapshot_services(job1)

    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    part2 = multilevel_kway(g, 2, seed=0)
    job2 = mpirun(partition_program(mesh, part2), 2, machine=fast_test(),
                  services=services_with_mesh(mesh, x, y, seed_from=snap))
    assert all(not used for used, _ in job2.values)  # fell back to the ring


def test_precreated_histories_for_multiple_process_counts():
    """Paper: 'create it in advance for the various numbers of processes of
    interest' — each count finds its own history."""
    mesh, _, x, y = make_problem()
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    snap = None
    for k in (2, 4):
        part = multilevel_kway(g, k, seed=0)
        job = mpirun(partition_program(mesh, part), k, machine=fast_test(),
                     services=services_with_mesh(mesh, x, y, seed_from=snap))
        snap = snapshot_services(job)
    for k in (2, 4):
        part = multilevel_kway(g, k, seed=0)
        job = mpirun(partition_program(mesh, part), k, machine=fast_test(),
                     services=services_with_mesh(mesh, x, y, seed_from=snap))
        assert all(used for used, _ in job.values)


def test_history_path_is_faster_than_ring_path():
    """Figure 5's claim: with a history, index distribution collapses to a
    contiguous read plus database lookups."""
    mesh, part, x, y = make_problem(cells=6)
    machine = origin2000()
    job1 = mpirun(partition_program(mesh, part), NPROCS, machine=machine,
                  services=services_with_mesh(mesh, x, y))
    t_ring = job1.phase_max("index_distri") + job1.phase_max("import_index")
    snap = snapshot_services(job1)
    job2 = mpirun(partition_program(mesh, part), NPROCS, machine=machine,
                  services=services_with_mesh(mesh, x, y, seed_from=snap))
    t_hist = job2.phase_max("index_distri") + job2.phase_max("import_index")
    assert all(used for used, _ in job2.values)
    assert t_hist < t_ring


def test_async_history_write_off_critical_path():
    """The application-visible cost of index_registry is (nearly) zero; the
    data lands later, on the writer processes."""
    mesh, part, x, y = make_problem()
    layout = mesh_file_layout(mesh.n_edges, mesh.n_nodes, ["x"], ["y"])

    def program(ctx):
        sdm = SDM(ctx, "fun3d")
        sdm.make_importlist(
            ["edge1", "edge2", "x", "y"], file_name="uns3d.msh",
            index_names=["edge1", "edge2"],
        )
        chunk = sdm.import_index(
            "edge1", "edge2", layout.offset("edge1"), layout.offset("edge2"),
            mesh.n_edges,
        )
        local = sdm.partition_index(part, chunk)
        t0 = ctx.now
        reg = sdm.index_registry(local)
        t_registry = ctx.now - t0
        not_done_yet = not reg.done
        sdm.finalize()
        return t_registry, not_done_yet

    job = mpirun(program, NPROCS, machine=origin2000(),
                 services=services_with_mesh(mesh, x, y))
    for t_registry, not_done_yet in job.values:
        # Synchronous part: metadata + offsets only — well under the time a
        # synchronous data write of the maps would take.
        assert t_registry < 0.05
    # At least the write completed by simulation end (writers are real
    # processes the simulator waits for).
    fs = job.services["fs"]
    assert fs.lookup(history_file_name("fun3d", mesh.n_edges, NPROCS)).size > 0
