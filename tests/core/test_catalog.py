"""SDMCatalog: browsing and reading past runs through metadata alone."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.core.catalog import SDMCatalog
from repro.dtypes import DOUBLE, INT32
from repro.errors import SDMUnknownDataset, SimProcessCrashed
from repro.mpi import mpirun

NPROCS = 4
GLOBAL = 40


def producer(level=Organization.LEVEL_3, timesteps=3):
    def program(ctx):
        sdm = SDM(ctx, "producer", organization=level, dimension=3,
                  problem_size=GLOBAL, num_timesteps=timesteps)
        result = sdm.make_datalist(["temp", "vel"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        lo = ctx.rank * (GLOBAL // ctx.size)
        mine = np.arange(lo, lo + GLOBAL // ctx.size, dtype=np.int64)
        sdm.data_view(handle, "temp", mine)
        sdm.data_view(handle, "vel", mine)
        for t in range(timesteps):
            sdm.write(handle, "temp", t, mine * 1.0 + 100 * t)
            sdm.write(handle, "vel", t, mine * -1.0)
        sdm.finalize(handle)
        return sdm.runid

    return program


@pytest.fixture(scope="module")
def produced():
    job = mpirun(producer(), NPROCS, machine=fast_test(), services=sdm_services())
    return snapshot_services(job)


def run_catalog(fn, snap, nprocs=NPROCS):
    return mpirun(fn, nprocs, machine=fast_test(),
                  services=sdm_services(seed_from=snap))


def test_runs_and_datasets_listing(produced):
    def program(ctx):
        cat = SDMCatalog.attach(ctx)
        runs = cat.runs()
        datasets = cat.datasets(runs[0].runid)
        return runs, datasets

    job = run_catalog(program, produced, nprocs=2)
    runs, datasets = job.values[0]
    assert len(runs) == 1
    assert runs[0].application == "producer"
    assert runs[0].problem_size == GLOBAL
    assert [d.name for d in datasets] == ["temp", "vel"]
    assert all(d.data_type is DOUBLE for d in datasets)
    assert all(d.global_size == GLOBAL for d in datasets)


def test_timesteps_listing(produced):
    def program(ctx):
        cat = SDMCatalog.attach(ctx)
        return cat.timesteps(1, "temp"), cat.timesteps(1, "nothing")

    job = run_catalog(program, produced, nprocs=2)
    steps, missing = job.values[0]
    assert steps == [0, 1, 2]
    assert missing == []


def test_read_slice_arbitrary_subset(produced):
    def program(ctx):
        cat = SDMCatalog.attach(ctx)
        rng = np.random.default_rng(ctx.rank)
        mine = np.sort(rng.choice(GLOBAL, size=7, replace=False))
        vals = cat.read_slice(1, "temp", 2, mine)
        return mine, vals

    job = run_catalog(program, produced)
    for mine, vals in job.values:
        np.testing.assert_allclose(vals, mine * 1.0 + 200)


def test_read_global_every_rank_gets_everything(produced):
    def program(ctx):
        cat = SDMCatalog.attach(ctx)
        return cat.read_global(1, "vel", 0)

    job = run_catalog(program, produced)
    for vals in job.values:
        np.testing.assert_allclose(vals, -np.arange(GLOBAL, dtype=np.float64))


def test_load_group_rehydrates_for_sdm_read(produced):
    """A new run can read an old run's data via a rehydrated group."""

    def program(ctx):
        cat = SDMCatalog.attach(ctx)
        group = cat.load_group(1)
        sdm = SDM(ctx, "analyzer")
        lo = ctx.rank * (GLOBAL // ctx.size)
        mine = np.arange(lo, lo + GLOBAL // ctx.size, dtype=np.int64)
        sdm.data_view(group, "temp", mine)
        buf = np.empty(len(mine))
        sdm.read(group, "temp", 1, buf, runid=1)
        sdm.finalize()
        return mine, buf

    job = run_catalog(program, produced)
    for mine, buf in job.values:
        np.testing.assert_allclose(buf, mine * 1.0 + 100)


def test_unknown_dataset_and_timestep_raise(produced):
    def program(ctx):
        cat = SDMCatalog.attach(ctx)
        cat.read_slice(1, "ghost_dataset", 0, np.arange(2))

    with pytest.raises(SimProcessCrashed) as ei:
        run_catalog(program, produced, nprocs=2)
    assert isinstance(ei.value.__cause__, SDMUnknownDataset)

    def program2(ctx):
        cat = SDMCatalog.attach(ctx)
        cat.read_slice(1, "temp", 99, np.arange(2))

    with pytest.raises(SimProcessCrashed) as ei:
        run_catalog(program2, produced, nprocs=2)
    assert isinstance(ei.value.__cause__, SDMUnknownDataset)


def test_catalog_works_on_split_subcommunicators(produced):
    """Regression: catalog reads must be communicator-relative, so analyst
    subgroups created with comm.split can each read their own dataset."""

    def program(ctx):
        cat = SDMCatalog.attach(ctx)
        team = ctx.comm.split(color=ctx.rank % 2, key=ctx.rank)
        name = "temp" if ctx.rank % 2 == 0 else "vel"
        saved = ctx.comm
        ctx.comm = team
        try:
            data = cat.read_global(1, name, 0)
        finally:
            ctx.comm = saved
        return name, data

    job = run_catalog(program, produced)
    for name, data in job.values:
        if name == "temp":
            np.testing.assert_allclose(data, np.arange(GLOBAL, dtype=np.float64))
        else:
            np.testing.assert_allclose(data, -np.arange(GLOBAL, dtype=np.float64))


def test_catalog_sees_multiple_runs(produced):
    # Produce a second run on top of the first snapshot.
    job = mpirun(producer(level=Organization.LEVEL_1, timesteps=1), NPROCS,
                 machine=fast_test(), services=sdm_services(seed_from=produced))
    snap2 = snapshot_services(job)

    def program(ctx):
        cat = SDMCatalog.attach(ctx)
        return [(r.runid, r.application) for r in cat.runs()]

    job2 = run_catalog(program, snap2, nprocs=2)
    assert job2.values[0] == [(1, "producer"), (2, "producer")]
