"""Failure injection: corrupted metadata, mid-collective crashes, misuse."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, sdm_services, snapshot_services
from repro.dtypes import DOUBLE
from repro.errors import (
    SDMHistoryMismatch,
    SDMStateError,
    SimDeadlockError,
    SimProcessCrashed,
)
from repro.mesh import box_tet_mesh, install_mesh_file, mesh_file_layout
from repro.mpi import mpirun
from repro.partition import block_partition


def make_setup():
    mesh = box_tet_mesh(3, 3, 3)
    part = block_partition(mesh.n_nodes, 4)
    x = np.arange(mesh.n_edges, dtype=np.float64)
    y = np.arange(mesh.n_nodes, dtype=np.float64)
    return mesh, part, x, y


def services_with_mesh(mesh, x, y, seed_from=None):
    base = sdm_services(seed_from=seed_from)

    def factory(sim, machine):
        built = base(sim, machine)
        if not built["fs"].exists("uns3d.msh"):
            install_mesh_file(built["fs"], "uns3d.msh", mesh.edge1, mesh.edge2,
                              {"x": x}, {"y": y})
        return built

    return factory


def partition_program(mesh, part):
    layout = mesh_file_layout(mesh.n_edges, mesh.n_nodes, ["x"], ["y"])

    def program(ctx):
        sdm = SDM(ctx, "fi")
        sdm.make_importlist(["edge1", "edge2", "x", "y"], file_name="uns3d.msh",
                            index_names=["edge1", "edge2"])
        chunk = sdm.import_index("edge1", "edge2", layout.offset("edge1"),
                                 layout.offset("edge2"), mesh.n_edges)
        local = sdm.partition_index(part, chunk)
        if chunk is not None:
            sdm.index_registry(local)
        sdm.finalize()
        return chunk is None

    return program


def test_corrupted_history_missing_rank_rows_detected():
    """index_table says a history exists, but the per-rank rows are gone —
    SDM must fail loudly, not silently recompute."""
    mesh, part, x, y = make_setup()
    job = mpirun(partition_program(mesh, part), 4, machine=fast_test(),
                 services=services_with_mesh(mesh, x, y))
    snap = snapshot_services(job)

    # Corrupt: drop the per-rank rows but keep the index_table entry.
    from repro.metadb import Database

    db = Database.loads(snap.db_dump)
    db.execute("DELETE FROM index_history_table")
    snap.db_dump = db.dump()

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(partition_program(mesh, part), 4, machine=fast_test(),
               services=services_with_mesh(mesh, x, y, seed_from=snap))
    assert isinstance(ei.value.__cause__, SDMHistoryMismatch)


def test_crash_in_one_rank_mid_collective_terminates_job():
    def program(ctx):
        if ctx.rank == 2:
            raise RuntimeError("rank 2 dies before the collective")
        ctx.comm.barrier()

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 4, machine=fast_test())
    assert "rank2" in str(ei.value)


def test_mismatched_collective_participation_deadlocks():
    """One rank skips a collective: detected as a deadlock, not a hang."""

    def program(ctx):
        if ctx.rank != 0:
            ctx.comm.barrier()

    with pytest.raises(SimDeadlockError):
        mpirun(program, 3, machine=fast_test())


def test_wrong_buffer_length_for_view_rejected():
    def program(ctx):
        sdm = SDM(ctx, "fi")
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=16)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", np.arange(4, dtype=np.int64) + 4 * ctx.rank)
        sdm.write(handle, "d", 0, np.zeros(3))  # wrong length

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)


def test_partition_index_without_import_rejected():
    mesh, part, x, y = make_setup()

    def program(ctx):
        sdm = SDM(ctx, "fi")
        sdm.partition_index(part, None)  # never imported, no history

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(),
               services=services_with_mesh(mesh, x, y))
    assert isinstance(ei.value.__cause__, SDMStateError)


def test_size_queries_before_partition_rejected():
    def program(ctx):
        sdm = SDM(ctx, "fi")
        sdm.partition_index_size()

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)


def test_read_of_never_written_timestep_rejected():
    from repro.errors import SDMUnknownDataset

    def program(ctx):
        sdm = SDM(ctx, "fi")
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=8)
        handle = sdm.set_attributes(result)
        mine = np.arange(4, dtype=np.int64) + 4 * ctx.rank
        sdm.data_view(handle, "d", mine)
        sdm.read(handle, "d", 5, np.empty(4))

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMUnknownDataset)
