"""End-to-end SDM API tests: the full Figure 2 + Figure 3 flow."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.core.layout import checkpoint_file_name
from repro.dtypes import DOUBLE
from repro.errors import SDMStateError, SDMUnknownDataset, SimProcessCrashed
from repro.mesh import box_tet_mesh, install_mesh_file, mesh_file_layout
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

NPROCS = 4


def make_problem(cells=3, k=NPROCS, seed=0):
    mesh = box_tet_mesh(cells, cells, cells)
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    part = multilevel_kway(g, k, seed=seed)
    rng = np.random.default_rng(7)
    x = rng.standard_normal(mesh.n_edges)   # edge data
    y = rng.standard_normal(mesh.n_nodes)   # node data
    return mesh, part, x, y


def seeded_services(mesh, x, y):
    """Services factory that pre-installs the mesh input file."""
    base = sdm_services()

    def factory(sim, machine):
        services = base(sim, machine)
        install_mesh_file(
            services["fs"], "uns3d.msh", mesh.edge1, mesh.edge2,
            {"x": x}, {"y": y},
        )
        return services

    return factory


def figure3_flow(ctx, mesh, part, organization=Organization.LEVEL_2,
                 register_history=True):
    """The paper's Figure 3: import, partition, distribute data."""
    layout = mesh_file_layout(mesh.n_edges, mesh.n_nodes, ["x"], ["y"])
    sdm = SDM(ctx, "fun3d", organization=organization)
    sdm.make_importlist(
        ["edge1", "edge2", "x", "y"], file_name="uns3d.msh",
        index_names=["edge1", "edge2"],
    )
    chunk = sdm.import_index(
        "edge1", "edge2", layout.offset("edge1"), layout.offset("edge2"),
        mesh.n_edges,
    )
    vector = sdm.partition_table(part)
    local = sdm.partition_index(part, chunk)
    if register_history and chunk is not None:
        sdm.index_registry(local)
    x_local = sdm.import_irregular(
        "x", layout.offset("x"), mesh.n_edges, local.edge_map
    )
    y_local = sdm.import_irregular(
        "y", layout.offset("y"), mesh.n_nodes, local.node_map
    )
    sdm.release_importlist()
    return sdm, local, vector, x_local, y_local


def test_full_import_partition_distribute_flow():
    mesh, part, x, y = make_problem()

    def program(ctx):
        sdm, local, vector, x_local, y_local = figure3_flow(ctx, mesh, part)
        sdm.finalize()
        return local, x_local, y_local

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=seeded_services(mesh, x, y))
    for rank, (local, x_local, y_local) in enumerate(job.values):
        np.testing.assert_allclose(x_local, x[local.edge_map])
        np.testing.assert_allclose(y_local, y[local.node_map])
        assert local.n_local_edges == len(local.edge_map)


def test_write_read_roundtrip_all_levels():
    mesh, part, x, y = make_problem()

    def make_program(level):
        def program(ctx):
            sdm, local, vector, _, _ = figure3_flow(
                ctx, mesh, part, organization=level, register_history=False
            )
            result = sdm.make_datalist(["p", "q"])
            sdm.associate_attributes(
                result, data_type=DOUBLE, global_size=mesh.n_nodes
            )
            handle = sdm.set_attributes(result)
            # Write owned nodes only (values complete after exchange).
            owned = local.owned_nodes
            sdm.data_view(handle, "p", owned)
            sdm.data_view(handle, "q", owned)
            for t in range(2):
                sdm.write(handle, "p", t, owned * 1.0 + t)
                sdm.write(handle, "q", t, owned * 2.0 + t)
            # Read back timestep 1.
            p_back = np.empty(len(owned))
            q_back = np.empty(len(owned))
            sdm.read(handle, "p", 1, p_back)
            sdm.read(handle, "q", 1, q_back)
            sdm.finalize(handle)
            return owned, p_back, q_back
        return program

    for level in Organization:
        job = mpirun(make_program(level), NPROCS, machine=fast_test(),
                     services=seeded_services(mesh, x, y))
        for owned, p_back, q_back in job.values:
            np.testing.assert_allclose(p_back, owned * 1.0 + 1)
            np.testing.assert_allclose(q_back, owned * 2.0 + 1)


def test_file_count_per_organization_level():
    """Paper: 2 steps x {p, q} -> L1: 4 files, L2: 2, L3: 1."""
    mesh, part, x, y = make_problem()

    def make_program(level):
        def program(ctx):
            sdm, local, _, _, _ = figure3_flow(
                ctx, mesh, part, organization=level, register_history=False
            )
            result = sdm.make_datalist(["p", "q"])
            sdm.associate_attributes(result, data_type=DOUBLE,
                                     global_size=mesh.n_nodes)
            handle = sdm.set_attributes(result)
            sdm.data_view(handle, "p", local.owned_nodes)
            sdm.data_view(handle, "q", local.owned_nodes)
            for t in range(2):
                sdm.write(handle, "p", t, local.owned_nodes * 1.0)
                sdm.write(handle, "q", t, local.owned_nodes * 1.0)
            sdm.finalize(handle)
            return None
        return program

    expected = {Organization.LEVEL_1: 4, Organization.LEVEL_2: 2,
                Organization.LEVEL_3: 1}
    for level, n_files in expected.items():
        job = mpirun(make_program(level), NPROCS, machine=fast_test(),
                     services=seeded_services(mesh, x, y))
        fs = job.services["fs"]
        ckpt_files = [f for f in fs.list_files() if f != "uns3d.msh"]
        assert len(ckpt_files) == n_files, (level, ckpt_files)


def test_level23_offsets_recorded_in_execution_table():
    mesh, part, x, y = make_problem()

    def program(ctx):
        sdm, local, _, _, _ = figure3_flow(
            ctx, mesh, part, organization=Organization.LEVEL_3,
            register_history=False,
        )
        result = sdm.make_datalist(["p", "q"])
        sdm.associate_attributes(result, data_type=DOUBLE,
                                 global_size=mesh.n_nodes)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "p", local.owned_nodes)
        sdm.data_view(handle, "q", local.owned_nodes)
        for t in range(2):
            sdm.write(handle, "p", t, local.owned_nodes * 1.0)
            sdm.write(handle, "q", t, local.owned_nodes * 1.0)
        sdm.finalize(handle)
        return sdm.runid

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=seeded_services(mesh, x, y))
    from repro.metadb.schema import SDMTables

    tables = SDMTables(job.services["db"])
    runid = job.values[0]
    nbytes = mesh.n_nodes * 8
    # Four instances packed back to back in one group file.
    offsets = [
        tables.lookup_execution(runid, ds, t)[1]
        for t in range(2) for ds in ("p", "q")
    ]
    assert offsets == [0, nbytes, 2 * nbytes, 3 * nbytes]


def test_global_file_contents_ordered_by_node_number():
    """Paper: results written 'in the order of global node numbers'."""
    mesh, part, x, y = make_problem()

    def program(ctx):
        sdm, local, _, _, _ = figure3_flow(
            ctx, mesh, part, organization=Organization.LEVEL_1,
            register_history=False,
        )
        result = sdm.make_datalist(["p"])
        sdm.associate_attributes(result, data_type=DOUBLE,
                                 global_size=mesh.n_nodes)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "p", local.owned_nodes)
        sdm.write(handle, "p", 0, local.owned_nodes * 10.0)
        sdm.finalize(handle)
        return None

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=seeded_services(mesh, x, y))
    fs = job.services["fs"]
    fname = checkpoint_file_name("fun3d", 1, "p", 0, Organization.LEVEL_1)
    data = fs.lookup(fname).store.read(0, mesh.n_nodes * 8).view(np.float64)
    np.testing.assert_allclose(data, np.arange(mesh.n_nodes) * 10.0)


def test_unsorted_map_array_permutation_roundtrip():
    """User map arrays need not be sorted; SDM permutes internally."""
    mesh, part, x, y = make_problem()

    def program(ctx):
        sdm = SDM(ctx, "perm", organization=Organization.LEVEL_1)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=16)
        handle = sdm.set_attributes(result)
        # Deliberately unsorted, rank-disjoint map.
        mine = np.array([3, 0, 2, 1], dtype=np.int64) + 4 * ctx.rank
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0 + 0.5)
        back = np.empty(4)
        sdm.read(handle, "d", 0, back)
        sdm.finalize(handle)
        return mine, back

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=seeded_services(mesh, x, y))
    for mine, back in job.values:
        np.testing.assert_allclose(back, mine * 1.0 + 0.5)


def test_write_without_view_rejected():
    def program(ctx):
        sdm = SDM(ctx, "bad")
        result = sdm.make_datalist(["p"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=10)
        handle = sdm.set_attributes(result)
        sdm.write(handle, "p", 0, np.zeros(1))

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)


def test_write_unknown_dataset_rejected():
    def program(ctx):
        sdm = SDM(ctx, "bad")
        result = sdm.make_datalist(["p"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=10)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "nope", np.arange(2))

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMUnknownDataset)


def test_set_attributes_requires_global_size():
    def program(ctx):
        sdm = SDM(ctx, "bad")
        result = sdm.make_datalist(["p"])
        sdm.set_attributes(result)  # no global_size set

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)


def test_runids_increment_across_runs_sharing_a_database():
    mesh, part, x, y = make_problem()

    def program(ctx):
        sdm = SDM(ctx, "app")
        return sdm.runid

    job1 = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    snap = snapshot_services(job1)
    job2 = mpirun(program, 2, machine=fast_test(),
                  services=sdm_services(seed_from=snap))
    assert job1.values == [1, 1]
    assert job2.values == [2, 2]
