"""The self-tuning policy tier: planner calibration convergence,
maintenance trigger hysteresis, rate-limit backoff, hint validation,
and the closed loops driving real SDM runs end to end."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CHUNKED
from repro.core.policy import (
    ADAPTIVE,
    ADAPTIVE_GAP,
    MaintenancePolicy,
    PlannerCalibration,
    PolicyConfig,
    STATIC,
)
from repro.dtypes import DOUBLE
from repro.metadb.schema import SDMTables
from repro.mpi import mpirun
from repro.mpiio.hints import Hints, accepted_hints, validate_hints

NPROCS = 4
GLOBAL = 32


def irregular_maps(nprocs=NPROCS, n=GLOBAL, seed=5):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    cuts = np.sort(rng.choice(np.arange(1, n), nprocs - 1, replace=False))
    return [p.astype(np.int64) for p in np.split(perm, cuts)]


# ---------------------------------------------------------------------------
# PlannerCalibration
# ---------------------------------------------------------------------------


def test_calibration_converges_to_observed_ratio():
    """Feeding timings where a slice candidate costs half a hash
    candidate must pull slice_row_cost from the static 2.0 toward 0.5."""
    cal = PlannerCalibration(explore_obs=4)
    assert cal.slice_row_cost == 2.0  # static default until measured
    for _ in range(32):
        cal.observe("hash", rows=100, seconds=100 * 1e-6)
        cal.observe("slice", rows=100, seconds=100 * 0.5e-6)
    assert cal.converged
    assert cal.slice_row_cost == pytest.approx(0.5, rel=0.05)


def test_calibration_ignores_noise_floor_and_frozen():
    cal = PlannerCalibration(min_rows=32)
    cal.observe("hash", rows=8, seconds=1.0)       # below min_rows
    cal.observe("hash", rows=64, seconds=0.0)      # timer floor
    assert cal.observations("hash") == 0
    cal.freeze()
    cal.observe("hash", rows=64, seconds=1.0)
    assert cal.observations("hash") == 0
    assert cal.frozen


def test_calibration_explores_starved_path_then_stops():
    cal = PlannerCalibration(explore_obs=2, min_rows=1)
    # Cost model says hash; slice has no observations yet -> explore.
    assert cal.decide(False) is True
    cal.observe("slice", rows=64, seconds=1e-4)
    cal.observe("slice", rows=64, seconds=1e-4)
    cal.observe("hash", rows=64, seconds=1e-4)
    cal.observe("hash", rows=64, seconds=1e-4)
    # Both paths known: the cost model's pick stands from here on.
    explored = cal.n_explored
    assert cal.decide(False) is False
    assert cal.decide(True) is True
    assert cal.n_explored == explored


def test_calibration_snapshot_round_trip_plans_identically():
    cal = PlannerCalibration(min_rows=1, explore_obs=1)
    for _ in range(16):
        cal.observe("hash", rows=100, seconds=1e-4)
        cal.observe("slice", rows=100, seconds=3e-4)
    frozen = PlannerCalibration.from_snapshot(cal.snapshot())
    assert frozen.frozen
    assert frozen.slice_row_cost == pytest.approx(cal.slice_row_cost)
    assert frozen.decide(True) is True       # no exploration when frozen
    frozen.observe("hash", rows=100, seconds=9.9)  # and no learning
    assert frozen.slice_row_cost == pytest.approx(cal.slice_row_cost)


def test_adaptive_planner_attaches_one_shared_calibration():
    def program(ctx):
        sdm = SDM(ctx, "pol", policy=ADAPTIVE)
        shared = sdm.planner_calibration is sdm.db.planner_calibration
        sdm.finalize()
        return shared

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert all(job.values)
    assert job.services["db"].planner_calibration is not None


def test_static_planner_leaves_database_uncalibrated():
    def program(ctx):
        sdm = SDM(ctx, "pol")
        sdm.finalize()
        return sdm.planner_calibration

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert all(v is None for v in job.values)
    assert job.services["db"].planner_calibration is None


# ---------------------------------------------------------------------------
# MaintenancePolicy triggers
# ---------------------------------------------------------------------------


def test_fragmentation_trigger_hysteresis():
    pol = MaintenancePolicy(compact_hiwater=0.40, compact_lowater=0.15)
    assert not pol.fragmentation_trigger("f", 30, 100)   # below hiwater
    assert pol.fragmentation_trigger("f", 50, 100)       # crosses: fire
    # Disarmed: repeated high observations enqueue nothing more.
    assert not pol.fragmentation_trigger("f", 60, 100)
    assert not pol.fragmentation_trigger("f", 99, 100)
    # Still above lowater: not re-armed yet.
    assert not pol.fragmentation_trigger("f", 20, 100)
    assert not pol.fragmentation_trigger("f", 45, 100)
    # At/below lowater re-arms; the next crossing fires again.
    assert not pol.fragmentation_trigger("f", 10, 100)
    assert pol.fragmentation_trigger("f", 41, 100)
    assert pol.n_compactions == 2
    assert not pol.fragmentation_trigger("g", 0, 0)      # empty file


def test_promotion_fires_exactly_once_at_nth_read():
    pol = MaintenancePolicy(promote_reads=3)
    key = (7, "d", 0)
    assert not pol.note_chunked_read(key)
    assert not pol.note_chunked_read(key)
    assert pol.note_chunked_read(key)
    assert not pol.note_chunked_read(key)    # promoted: never again
    assert pol.n_promotions == 1
    assert pol.note_chunked_read((7, "d", 1)) is False  # independent keys


def test_hysteresis_bounds_validated():
    with pytest.raises(ValueError):
        MaintenancePolicy(compact_hiwater=0.2, compact_lowater=0.3)


class _FakeFS:
    def __init__(self, depths):
        self.depths = list(depths)

    def queue_depth(self):
        return self.depths.pop(0) if self.depths else 0


class _FakeProc:
    def __init__(self):
        self.holds = []

    def hold(self, t):
        self.holds.append(t)


def test_throttle_exponential_backoff_and_cap():
    pol = MaintenancePolicy(throttle_depth=1, throttle_hold=1e-3,
                            throttle_max_holds=4)
    proc = _FakeProc()
    # Congestion clears after two polls: two doubling holds, then go.
    assert pol.throttle(_FakeFS([3, 2, 0]), proc) == 2
    assert proc.holds == [1e-3, 2e-3]
    # Saturated forever: capped at max_holds, never starved out.
    proc = _FakeProc()
    assert pol.throttle(_FakeFS([9] * 100), proc) == 4
    assert proc.holds == [1e-3, 2e-3, 4e-3, 8e-3]
    assert pol.n_throttle_holds == 6
    # Idle storage: no holds at all.
    assert pol.throttle(_FakeFS([0]), _FakeProc()) == 0


# ---------------------------------------------------------------------------
# PolicyConfig resolution
# ---------------------------------------------------------------------------


def test_policy_config_resolution():
    assert PolicyConfig.resolve(None) == PolicyConfig()
    assert PolicyConfig.resolve(STATIC).planner == STATIC
    adaptive = PolicyConfig.resolve(ADAPTIVE)
    assert (adaptive.planner, adaptive.coalesce, adaptive.maintenance) == (
        ADAPTIVE, ADAPTIVE, ADAPTIVE
    )
    mixed = PolicyConfig(coalesce=ADAPTIVE)
    assert PolicyConfig.resolve(mixed) is mixed
    assert mixed.make_planner_calibration() is None
    assert mixed.make_maintenance_policy() is None
    assert adaptive.make_maintenance_policy().promote_reads == 3
    with pytest.raises(ValueError):
        PolicyConfig(planner="sometimes")
    with pytest.raises(ValueError):
        PolicyConfig.resolve(42)


# ---------------------------------------------------------------------------
# io_hints validation (SDM / SDMCatalog entry points)
# ---------------------------------------------------------------------------


def test_validate_hints_rejects_unknown_and_nonsense():
    validate_hints(None)
    validate_hints({"coalesce_gap": ADAPTIVE_GAP, "coalesce_waste": 0.5})
    with pytest.raises(KeyError, match="accepted hints"):
        validate_hints({"colaesce_gap": 64})
    with pytest.raises(ValueError, match="coalesce_gap"):
        validate_hints({"coalesce_gap": -7})
    with pytest.raises(ValueError, match="coalesce_waste"):
        validate_hints({"coalesce_waste": 1.5})
    assert "coalesce_gap" in accepted_hints()


def test_sdm_entry_points_validate_hints():
    def program(ctx):
        outcomes = []
        for hints in ({"cb_bufer_size": 1}, {"coalesce_gap": -9}):
            try:
                SDM(ctx, "bad", io_hints=hints)
                outcomes.append("accepted")
            except (KeyError, ValueError) as e:
                outcomes.append(type(e).__name__)
        sdm = SDM(ctx, "ok", io_hints={"coalesce_gap": 64})
        sdm.finalize()
        return outcomes

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert all(v == ["KeyError", "ValueError"] for v in job.values)


def test_hints_from_machine_carries_adaptive_sentinel_and_waste():
    m = fast_test()
    h = Hints.from_machine(
        m, {"coalesce_gap": ADAPTIVE_GAP, "coalesce_waste": 0.1}
    )
    assert h.coalesce_gap == ADAPTIVE_GAP
    assert h.coalesce_waste == pytest.approx(0.1)
    assert Hints.from_machine(m).coalesce_gap == 0  # default unchanged


# ---------------------------------------------------------------------------
# Closed loops end to end
# ---------------------------------------------------------------------------


def _policy_program(maps, n=GLOBAL, reads=3, timesteps=1, sync_reorg=()):
    """Chunked writes, optional sync reorganizations, then ``reads``
    read-backs of t0 under an adaptive policy."""

    def program(ctx):
        sdm = SDM(ctx, "pol", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED, reorganize_mode="background",
                  policy=ADAPTIVE)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        for t in range(timesteps):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        for t in sync_reorg:
            sdm.reorganize(handle, "d", t, mode="sync")
        backs = []
        for _ in range(reads):
            back = np.empty(len(mine))
            sdm.read(handle, "d", 0, back)
            backs.append(back)
        sdm.drain_maintenance()
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        counters = (
            sdm._maint_policy.n_promotions,
            sdm._maint_policy.n_compactions,
        )
        after = np.empty(len(mine))
        sdm.read(handle, "d", 0, after)
        sdm.finalize(handle)
        return backs, after, fname, counters

    return program


def test_adaptive_policy_promotes_hot_chunked_instance():
    """The Nth collective read of a still-chunked instance must enqueue
    its background reorganization; after the drain the instance serves
    canonically and every read (before, at, after the flip) agrees."""
    maps = irregular_maps()
    job = mpirun(_policy_program(maps, reads=3), NPROCS,
                 machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    for rank, (backs, after, _, counters) in enumerate(job.values):
        assert counters[0] == 1
        for back in backs + [after]:
            np.testing.assert_allclose(back, maps[rank] * 1.0)
    # The background flip landed: the instance's chunk rows are gone.
    assert tables.chunks_for(1, "d", 0) == []


def test_adaptive_policy_stays_chunked_below_promotion_threshold():
    # One read + the post-drain read-back = 2 total, below the default
    # promote_reads=3: the instance must still be chunked at job end.
    maps = irregular_maps()
    job = mpirun(_policy_program(maps, reads=1), NPROCS,
                 machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    assert all(v[3][0] == 0 for v in job.values)
    assert tables.chunks_for(1, "d", 0) != []


def test_adaptive_policy_autocompacts_fragmented_file():
    """Sync reorganization of the first of 3 instances leaves its data
    and the shared index blocks dead — past the high-water mark, so the
    observation after the flip must enqueue a background compaction that
    reclaims the space with no application compact() call anywhere."""
    maps = irregular_maps()
    job = mpirun(
        _policy_program(maps, reads=1, timesteps=3, sync_reorg=(0,)),
        NPROCS, machine=fast_test(), services=sdm_services(),
    )
    tables = SDMTables(job.services["db"])
    fname = job.values[0][2]
    # Rank 0 (the trigger's home) fired exactly once, and the queued
    # compaction both reclaimed bytes and left no recorded dead extents.
    assert job.values[0][3][1] == 1
    assert job.services["maint"].bytes_reclaimed > 0
    assert tables.free_bytes_in(fname) == 0
    for rank, (backs, after, _, _) in enumerate(job.values):
        np.testing.assert_allclose(after, maps[rank] * 1.0)


# ---------------------------------------------------------------------------
# Counter snapshot API (FileSystem.stats / Transport.stats)
# ---------------------------------------------------------------------------


def test_stats_snapshot_and_reset():
    maps = irregular_maps()

    def program(ctx):
        sdm = SDM(ctx, "st", storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", maps[ctx.rank])
        sdm.write(handle, "d", 0, maps[ctx.rank] * 1.0)
        sdm.finalize(handle)
        return ctx.comm.transport.stats()

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=sdm_services())
    tstats = job.values[0]
    assert tstats["coll_counts"].get("bcast", 0) > 0
    fs = job.services["fs"]
    snap = fs.stats(reset=True)
    assert snap["bytes_written"] > 0
    assert snap["n_opens"] > 0
    assert fs.bytes_written == 0 and fs.n_requests == 0
    assert fs.stats()["bytes_written"] == 0
    assert fs.queue_depth() == 0  # job over: nothing queued


def test_transport_stats_reset_copies_dicts():
    maps = irregular_maps(nprocs=2)

    def program(ctx):
        sdm = SDM(ctx, "st2", storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", maps[ctx.rank])
        sdm.write(handle, "d", 0, maps[ctx.rank] * 1.0)
        # The transport is one job-shared service: rank 0 owns the
        # counter window (a second reset would race it).
        snap = None
        if ctx.rank == 0:
            snap = ctx.comm.transport.stats(reset=True)
            snap["coll_counts"]["bcast"] = -1  # mutating the snapshot...
        sdm.finalize(handle)
        live = ctx.comm.transport.stats() if ctx.rank == 0 else None
        return snap, live

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    snap, live = job.values[0]
    assert snap["coll_counts"]["bcast"] == -1  # our mutation stuck to snap
    assert snap["coll_counts"].get("barrier", 0) > 0
    # ...but never leaked into the live counters, which restarted from 0
    # at the reset and only saw the post-reset traffic (finalize's
    # barrier at least; never our poisoned -1).
    assert live["coll_counts"].get("bcast", 0) >= 0
    assert live["coll_counts"].get("barrier", 0) > 0
