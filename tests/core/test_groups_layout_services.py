"""Core support modules: DataView permutations, layout naming, services
snapshots, SDM hint pass-through."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.core.groups import DataGroup, DatasetAttrs, DataView
from repro.core.layout import checkpoint_file_name, history_file_name
from repro.dtypes import DOUBLE
from repro.errors import SDMStateError, SDMUnknownDataset
from repro.mpi import mpirun


# ---------------------------------------------------------------------------
# DataView
# ---------------------------------------------------------------------------

def test_sorted_map_has_no_permutation():
    v = DataView.from_map(np.array([2, 5, 9], dtype=np.int64))
    assert v.perm is None
    buf = np.array([1.0, 2.0, 3.0])
    assert v.to_file_order(buf) is buf
    assert v.to_user_order(buf) is buf


def test_unsorted_map_roundtrips_through_permutation():
    v = DataView.from_map(np.array([9, 2, 5], dtype=np.int64))
    assert v.perm is not None
    np.testing.assert_array_equal(v.map_sorted, [2, 5, 9])
    user = np.array([90.0, 20.0, 50.0])  # aligned with [9, 2, 5]
    filed = v.to_file_order(user)
    np.testing.assert_array_equal(filed, [20.0, 50.0, 90.0])
    np.testing.assert_array_equal(v.to_user_order(filed), user)


def test_duplicate_map_entries_keep_stable_order():
    v = DataView.from_map(np.array([5, 5, 2], dtype=np.int64))
    np.testing.assert_array_equal(v.map_sorted, [2, 5, 5])
    user = np.array([10.0, 11.0, 12.0])
    np.testing.assert_array_equal(v.to_user_order(v.to_file_order(user)), user)


def test_2d_map_rejected():
    with pytest.raises(SDMStateError):
        DataView.from_map(np.zeros((2, 2), dtype=np.int64))


# ---------------------------------------------------------------------------
# DataGroup
# ---------------------------------------------------------------------------

def test_group_dataset_and_view_errors():
    g = DataGroup(group_id=1, runid=1)
    g.datasets["p"] = DatasetAttrs(name="p", global_size=10)
    with pytest.raises(SDMUnknownDataset):
        g.dataset("missing")
    with pytest.raises(SDMStateError):
        g.view("p")  # no view installed yet
    g.views["p"] = DataView.from_map(np.arange(3))
    assert g.view("p").local_count == 3


def test_dataset_attrs_byte_accounting():
    a = DatasetAttrs(name="x", data_type=DOUBLE, global_size=100)
    assert a.element_bytes() == 8
    assert a.global_bytes() == 800


# ---------------------------------------------------------------------------
# layout naming
# ---------------------------------------------------------------------------

def test_checkpoint_names_by_level():
    assert checkpoint_file_name("app", 2, "p", 7, Organization.LEVEL_1) == \
        "app/p.t000007"
    assert checkpoint_file_name("app", 2, "p", 7, Organization.LEVEL_2) == \
        "app/p.dat"
    assert checkpoint_file_name("app", 2, "p", 7, Organization.LEVEL_3) == \
        "app/group2.dat"


def test_level1_names_unique_per_step_and_dataset():
    names = {
        checkpoint_file_name("a", 1, ds, t, Organization.LEVEL_1)
        for ds in ("p", "q") for t in range(3)
    }
    assert len(names) == 6


def test_history_name_varies_with_size_and_procs():
    a = history_file_name("app", 1000, 8)
    b = history_file_name("app", 1000, 16)
    c = history_file_name("app", 2000, 8)
    assert len({a, b, c}) == 3


# ---------------------------------------------------------------------------
# services snapshots
# ---------------------------------------------------------------------------

def test_snapshot_carries_files_and_database():
    def writer(ctx):
        sdm = SDM(ctx, "snap")
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=8)
        handle = sdm.set_attributes(result)
        mine = np.arange(4, dtype=np.int64) + 4 * ctx.rank
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.5)
        sdm.finalize(handle)
        return None

    job = mpirun(writer, 2, machine=fast_test(), services=sdm_services())
    snap = snapshot_services(job)
    assert snap.total_file_bytes > 0
    assert "run_table" in snap.db_dump

    def reader(ctx):
        fs = ctx.service("fs")
        db = ctx.service("db")
        rows = db.execute("SELECT COUNT(*) FROM execution_table")
        data = fs.lookup("snap/d.dat").store.read(0, 64).view(np.float64)
        return rows[0][0], data

    job2 = mpirun(reader, 1, machine=fast_test(),
                  services=sdm_services(seed_from=snap))
    count, data = job2.values[0]
    assert count == 1
    np.testing.assert_allclose(data, np.arange(8) * 1.5)


# ---------------------------------------------------------------------------
# SDM io_hints pass-through
# ---------------------------------------------------------------------------

def test_sdm_hints_reach_the_io_layer():
    def program(ctx):
        sdm = SDM(ctx, "hints", io_hints={"cb_nodes": 1, "cb_buffer_size": 4096})
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=16)
        handle = sdm.set_attributes(result)
        mine = np.arange(8, dtype=np.int64) + 8 * ctx.rank
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0)
        f = sdm._open_cached(
            checkpoint_file_name("hints", handle.group_id, "d", 0,
                                 sdm.organization),
            # same amode key as write used
            __import__("repro.mpiio.consts", fromlist=["MODE_CREATE"]).MODE_CREATE
            | __import__("repro.mpiio.consts", fromlist=["MODE_RDWR"]).MODE_RDWR,
        )
        out = (f.hints.cb_nodes, f.hints.cb_buffer_size)
        sdm.finalize(handle)
        return out

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert job.values == [(1, 4096), (1, 4096)]


def test_sdm_unknown_hint_rejected():
    from repro.errors import SimProcessCrashed

    def program(ctx):
        sdm = SDM(ctx, "hints", io_hints={"not_a_hint": 1})
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=4)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", np.arange(2, dtype=np.int64) + 2 * ctx.rank)
        sdm.write(handle, "d", 0, np.zeros(2))

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, KeyError)
