"""The storage-order data path: chunked writes, assembly reads, reorganize.

The contract under test: a chunked write ships *no* data between ranks
(transport counters prove it), yet reads return exactly what a canonical
write would serve — before and after :meth:`SDM.reorganize` — and the
metadata flips representations atomically.
"""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.core.catalog import SDMCatalog
from repro.core.layout import CANONICAL, CHUNKED, checkpoint_file_name
from repro.dtypes import DOUBLE
from repro.errors import SDMStateError, SimProcessCrashed
from repro.metadb.schema import SDMTables
from repro.mpi import mpirun

NPROCS = 4
GLOBAL = 32


def irregular_maps(nprocs=NPROCS, n=GLOBAL, seed=3):
    """Rank-disjoint, deliberately unsorted irregular maps covering [0, n)."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    cuts = np.sort(rng.choice(np.arange(1, n), nprocs - 1, replace=False))
    return [p.astype(np.int64) for p in np.split(perm, cuts)]


def simple_program(order, level, *, reorganize=False, maps=None, n=GLOBAL):
    maps = irregular_maps() if maps is None else maps

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=level, storage_order=order)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        counts0 = dict(ctx.comm.transport.coll_counts)
        for t in range(2):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        a2a_writes = (
            ctx.comm.transport.coll_counts.get("alltoallv", 0)
            - counts0.get("alltoallv", 0)
        )
        if reorganize:
            for t in range(2):
                sdm.reorganize(handle, "d", t)
        back = np.empty(len(mine))
        sdm.read(handle, "d", 1, back)
        sdm.finalize(handle)
        return mine, back, a2a_writes

    return program


@pytest.mark.parametrize("level", list(Organization))
@pytest.mark.parametrize("order", [CANONICAL, CHUNKED])
def test_write_read_roundtrip_both_orders(order, level):
    job = mpirun(simple_program(order, level), NPROCS, machine=fast_test(),
                 services=sdm_services())
    for mine, back, _ in job.values:
        np.testing.assert_allclose(back, mine * 1.0 + 1)


@pytest.mark.parametrize("level", list(Organization))
def test_reorganize_then_read_roundtrip(level):
    job = mpirun(simple_program(CHUNKED, level, reorganize=True), NPROCS,
                 machine=fast_test(), services=sdm_services())
    for mine, back, _ in job.values:
        np.testing.assert_allclose(back, mine * 1.0 + 1)


def test_chunked_write_does_no_data_exchange():
    """The write-path claim: canonical writes exchange through alltoallv
    (two-phase I/O), chunked writes never touch it."""
    canonical = mpirun(simple_program(CANONICAL, Organization.LEVEL_2),
                       NPROCS, machine=fast_test(), services=sdm_services())
    chunked = mpirun(simple_program(CHUNKED, Organization.LEVEL_2),
                     NPROCS, machine=fast_test(), services=sdm_services())
    for _, _, a2a in canonical.values:
        assert a2a > 0
    for _, _, a2a in chunked.values:
        assert a2a == 0


def test_chunk_table_records_every_rank_block():
    maps = irregular_maps()
    job = mpirun(simple_program(CHUNKED, Organization.LEVEL_2, maps=maps),
                 NPROCS, machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    chunks = tables.chunks_for(1, "d", 0)
    assert [c.rank for c in chunks] == list(range(NPROCS))
    t0_bytes = 0
    for rank, c in enumerate(chunks):
        mine = np.sort(maps[rank])
        steps = np.diff(mine)
        arithmetic = len(mine) <= 1 or (steps == steps[0]).all()
        assert c.num_elements == len(mine)
        assert (c.gid_min, c.gid_max) == (int(mine[0]), int(mine[-1]))
        if arithmetic:  # constant stride: no index block stored
            assert c.data_offset == c.index_offset
            t0_bytes += 8 * len(mine)
        else:
            assert c.data_offset == c.index_offset + 8 * len(mine)
            t0_bytes += 16 * len(mine)
    # The execution row covers index + data bytes so later appends clear it.
    where = tables.lookup_execution(1, "d", 0)
    assert where[2] == t0_bytes
    # Timestep 1 appended after timestep 0's chunks — and, the view being
    # unchanged, shares timestep 0's index blocks instead of rewriting
    # them (reference-not-copy): its region holds data bytes only.
    t1 = tables.lookup_execution(1, "d", 1)
    assert t1[1] == t0_bytes
    assert t1[2] == GLOBAL * 8
    for c0, c1 in zip(chunks, tables.chunks_for(1, "d", 1)):
        if c0.index_offset != c0.data_offset:  # dense chunks have no block
            assert c1.index_offset == c0.index_offset
        assert c1.data_offset >= t0_bytes


def test_dense_chunks_store_no_index_block():
    """Contiguous-range maps (the RT triangle pattern) elide the index
    block entirely: index_offset == data_offset and the instance region
    holds exactly the data bytes."""
    n = 16

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = np.arange(ctx.rank * 4, ctx.rank * 4 + 4, dtype=np.int64)
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0)
        back = np.empty(4)
        sdm.read(handle, "d", 0, back)
        sdm.finalize(handle)
        return mine, back

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    for c in tables.chunks_for(1, "d", 0):
        assert c.index_offset == c.data_offset
    assert tables.lookup_execution(1, "d", 0)[2] == n * 8
    for mine, back in job.values:
        np.testing.assert_allclose(back, mine * 1.0)


def test_strided_chunks_store_no_index_block_and_read_back():
    """Constant-stride maps (round-robin/block-cyclic) are arithmetic
    chunks: no index block on disk, ``gid_step`` recorded in the chunk
    row, positions computed at read time."""
    n = 32

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = np.arange(ctx.rank, n, ctx.size, dtype=np.int64)
        sdm.data_view(handle, "d", mine)
        for t in range(2):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        back = np.empty(len(mine))
        sdm.read(handle, "d", 1, back)
        # A foreign dense view crossing every strided chunk.
        block = n // ctx.size
        share = np.arange(ctx.rank * block, (ctx.rank + 1) * block,
                          dtype=np.int64)
        sdm.data_view(handle, "d", share)
        whole = np.empty(block)
        sdm.read(handle, "d", 0, whole)
        sdm.finalize(handle)
        return mine, back, share, whole

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    for t in range(2):
        for c in tables.chunks_for(1, "d", t):
            assert c.index_offset == c.data_offset  # no index block
            assert c.gid_step == NPROCS
        # The instance region holds exactly the data bytes.
        assert tables.lookup_execution(1, "d", t)[2] == n * 8
    fname = tables.lookup_execution(1, "d", 0)[0]
    assert job.services["fs"].lookup(fname).size == 2 * n * 8
    for mine, back, share, whole in job.values:
        np.testing.assert_allclose(back, mine * 1.0 + 1)
        np.testing.assert_allclose(whole, share * 1.0)


def test_strided_chunks_reorganize_to_global_order():
    n = 24
    maps = [np.arange(r, n, NPROCS, dtype=np.int64) for r in range(NPROCS)]
    job = mpirun(
        simple_program(CHUNKED, Organization.LEVEL_2, reorganize=True,
                       maps=maps, n=n),
        NPROCS, machine=fast_test(), services=sdm_services(),
    )
    tables = SDMTables(job.services["db"])
    for t in range(2):
        assert tables.chunks_for(1, "d", t) == []
        fname, base, _nbytes = tables.lookup_execution(1, "d", t)
        data = (
            job.services["fs"].lookup(fname).store
            .read(base, n * 8).view(np.float64)
        )
        np.testing.assert_allclose(data, np.arange(n) * 1.0 + t)
    for mine, back, _ in job.values:
        np.testing.assert_allclose(back, mine * 1.0 + 1)


def test_chunked_read_submits_runs_per_chunk_not_per_element():
    """The run-coalescing collapse: the collective read of a chunked
    instance submits O(chunks) byte runs to the I/O layer, not
    O(elements)."""
    n = 4096

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = np.arange(ctx.rank, n, ctx.size, dtype=np.int64)
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0)
        fs = ctx.service("fs")
        before = fs.runs_submitted
        ctx.comm.barrier()  # every rank snapshots before any read starts
        back = np.empty(len(mine))
        sdm.read(handle, "d", 0, back)
        ctx.comm.barrier()  # every rank's runs are counted
        submitted = fs.runs_submitted - before
        sdm.finalize(handle)
        return mine, back, submitted

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    # The counter is fs-global; every rank observed the same job-wide
    # total: far fewer runs than the n elements read.
    for mine, back, submitted in job.values:
        np.testing.assert_allclose(back, mine * 1.0)
        assert submitted <= 4 * NPROCS, submitted


def test_sparse_foreign_view_reads_few_elements_of_big_chunks():
    """A reader wanting a handful of scattered gids out of large irregular
    chunks (the catalog-viewer shape): candidates bound by the wanted
    count, values still exact."""
    n = 256
    maps = irregular_maps(n=n, seed=17)

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", maps[ctx.rank])
        sdm.write(handle, "d", 0, maps[ctx.rank] * 1.0)
        # Three scattered gids per rank, spanning the whole range.
        sparse = np.array([ctx.rank, n // 2 + ctx.rank, n - 1 - ctx.rank],
                          dtype=np.int64)
        sdm.data_view(handle, "d", sparse)
        back = np.empty(len(sparse))
        sdm.read(handle, "d", 0, back)
        sdm.finalize(handle)
        return sparse, back

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    for sparse, back in job.values:
        np.testing.assert_allclose(back, sparse * 1.0)


def test_coalesced_read_matches_per_element_read(monkeypatch):
    """Coalescing off (one run per element) and on must produce
    byte-identical chunked reads."""
    from repro.mpiio import runs as runs_mod

    maps = irregular_maps()

    def run(coalesce):
        if not coalesce:
            monkeypatch.setattr(
                runs_mod, "coalesce_positions",
                lambda pos, width, gap=0: (
                    np.asarray(pos, dtype=np.int64),
                    np.full(len(pos), width, dtype=np.int64),
                    np.arange(len(pos), dtype=np.int64),
                ),
            )
        else:
            monkeypatch.undo()
        job = mpirun(
            simple_program(CHUNKED, Organization.LEVEL_2, maps=maps),
            NPROCS, machine=fast_test(), services=sdm_services(),
        )
        return [back for _, back, _ in job.values]

    off = run(False)
    on = run(True)
    for a, b in zip(off, on):
        np.testing.assert_array_equal(a, b)


def test_index_block_cache_entries_are_immutable():
    """Regression: a caller mutating a cached index block (or the array
    it inserted) must not corrupt later reads."""
    from repro.core.datapath import IndexBlockCache

    cache = IndexBlockCache()
    block = np.array([3, 5, 9], dtype=np.int64)
    stored = cache.put("f", 100, block)
    # Mutating the caller's array after the put cannot reach the cache.
    block[:] = -1
    got = cache.get("f", 100, 3)
    np.testing.assert_array_equal(got, [3, 5, 9])
    # The handed-out array is read-only.
    assert not got.flags.writeable
    assert not stored.flags.writeable
    with pytest.raises(ValueError):
        got[0] = 42
    # And the entry is still intact afterwards.
    np.testing.assert_array_equal(cache.get("f", 100, 3), [3, 5, 9])


def test_chunked_and_canonical_use_distinct_files():
    assert checkpoint_file_name("a", 1, "d", 0, Organization.LEVEL_2) == "a/d.dat"
    assert checkpoint_file_name(
        "a", 1, "d", 0, Organization.LEVEL_2, storage_order=CHUNKED
    ) == "a/d.chunked.dat"
    assert checkpoint_file_name(
        "a", 1, "d", 3, Organization.LEVEL_1, storage_order=CHUNKED
    ) == "a/d.t000003.chunked"
    assert checkpoint_file_name(
        "a", 7, "d", 0, Organization.LEVEL_3, storage_order=CHUNKED
    ) == "a/group7.chunked.dat"


def test_reorganize_flips_metadata_and_builds_global_order():
    maps = irregular_maps()
    job = mpirun(
        simple_program(CHUNKED, Organization.LEVEL_2, reorganize=True,
                       maps=maps),
        NPROCS, machine=fast_test(), services=sdm_services(),
    )
    tables = SDMTables(job.services["db"])
    for t in range(2):
        assert tables.chunks_for(1, "d", t) == []
        fname, base, nbytes = tables.lookup_execution(1, "d", t)
        assert fname == "dp/d.dat"  # repointed at the canonical file
        assert nbytes == GLOBAL * 8
        data = (
            job.services["fs"].lookup(fname).store
            .read(base, GLOBAL * 8).view(np.float64)
        )
        np.testing.assert_allclose(data, np.arange(GLOBAL) * 1.0 + t)


def test_reorganize_is_idempotent_and_canonical_noop():
    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=8)
        handle = sdm.set_attributes(result)
        mine = np.arange(2, dtype=np.int64) + 2 * ctx.rank
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 2.0)
        first = sdm.reorganize(handle, "d", 0)
        second = sdm.reorganize(handle, "d", 0)  # no chunks left: no-op
        back = np.empty(2)
        sdm.read(handle, "d", 0, back)
        sdm.finalize(handle)
        return first, second, mine, back

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    for first, second, mine, back in job.values:
        assert first == second == "dp/d.dat"
        np.testing.assert_allclose(back, mine * 2.0)


def test_index_sharing_survives_space_reclamation():
    """Reorganizing every instance drops the chunked file's append cursor
    to 0; the next chunked write must re-emit its index block rather than
    reference the about-to-be-overwritten one."""
    maps = irregular_maps()

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0)
        sdm.reorganize(handle, "d", 0)  # chunked file fully reclaimed
        sdm.write(handle, "d", 1, mine * 2.0)  # reuses the freed region
        back0, back1 = np.empty(len(mine)), np.empty(len(mine))
        sdm.read(handle, "d", 0, back0)
        sdm.read(handle, "d", 1, back1)
        sdm.finalize(handle)
        return mine, back0, back1

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    assert tables.lookup_execution(1, "d", 1)[1] == 0  # region reclaimed
    fresh_blocks = [
        c for c in tables.chunks_for(1, "d", 1)
        if c.data_offset == c.index_offset + 8 * c.num_elements
    ]
    assert fresh_blocks  # irregular chunks re-emitted their index blocks
    for mine, back0, back1 in job.values:
        np.testing.assert_allclose(back0, mine * 1.0)
        np.testing.assert_allclose(back1, mine * 2.0)


def test_index_cache_invalidated_when_cursor_returns_above_block():
    """Regression: after reorganize reclaims the chunked file, a dense
    write can overwrite a cached index block AND push the append cursor
    back above it — a later write with the original view must re-emit its
    block rather than reference the overwritten bytes."""
    n = 64
    maps = irregular_maps(n=n, seed=13)  # irregular: index blocks exist

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        # Irregular view: index block written at the file start and cached.
        irregular = maps[ctx.rank]
        sdm.data_view(handle, "d", irregular)
        sdm.write(handle, "d", 0, irregular * 1.0)
        sdm.reorganize(handle, "d", 0)  # cursor retreats to 0
        # Dense view: t1's data bytes land where t0's index blocks were,
        # and the cursor rises back above the stale cached blocks.
        block = n // ctx.size
        dense = np.arange(ctx.rank * block, (ctx.rank + 1) * block,
                          dtype=np.int64)
        sdm.data_view(handle, "d", dense)
        sdm.write(handle, "d", 1, dense * 2.0)
        # Back to the original view: a stale cache hit here would point
        # t2's chunk rows at t1's data bytes.
        sdm.data_view(handle, "d", irregular)
        sdm.write(handle, "d", 2, irregular * 3.0)
        back = np.empty(len(irregular))
        sdm.read(handle, "d", 2, back)
        sdm.finalize(handle)
        return irregular, back

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    for irregular, back in job.values:
        np.testing.assert_allclose(back, irregular * 3.0)


def test_chunked_read_with_foreign_view():
    """A reader whose map matches no writer's chunk assembles correctly."""
    maps = irregular_maps()

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", maps[ctx.rank])
        sdm.write(handle, "d", 0, maps[ctx.rank] * 3.0)
        # Re-view with a contiguous block slicing across every chunk.
        block = GLOBAL // ctx.size
        mine = np.arange(ctx.rank * block, (ctx.rank + 1) * block,
                         dtype=np.int64)
        sdm.data_view(handle, "d", mine)
        back = np.empty(block)
        sdm.read(handle, "d", 0, back)
        sdm.finalize(handle)
        return mine, back

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    for mine, back in job.values:
        np.testing.assert_allclose(back, mine * 3.0)


def test_ghost_overlap_resolves_like_canonical():
    """Ghost-inclusive maps: ranks write overlapping gids with equal values
    (the SDM contract); both orders must return the same arrays."""
    n = 16

    def maps_for(rank):
        # Every rank owns 4 gids and also writes its right neighbor's first.
        own = np.arange(rank * 4, rank * 4 + 4, dtype=np.int64)
        ghost = np.array([(rank * 4 + 4) % n], dtype=np.int64)
        return np.concatenate([own, ghost])

    def make_program(order):
        def program(ctx):
            sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                      storage_order=order)
            result = sdm.make_datalist(["d"])
            sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
            handle = sdm.set_attributes(result)
            mine = maps_for(ctx.rank)
            sdm.data_view(handle, "d", mine)
            sdm.write(handle, "d", 0, mine * 5.0)  # overlap values agree
            back = np.empty(len(mine))
            sdm.read(handle, "d", 0, back)
            sdm.finalize(handle)
            return mine, back
        return program

    for order in (CANONICAL, CHUNKED):
        job = mpirun(make_program(order), NPROCS, machine=fast_test(),
                     services=sdm_services())
        for mine, back in job.values:
            np.testing.assert_allclose(back, mine * 5.0)


def test_catalog_serves_chunked_runs_transparently():
    maps = irregular_maps()
    producer = mpirun(
        simple_program(CHUNKED, Organization.LEVEL_3, maps=maps),
        NPROCS, machine=fast_test(), services=sdm_services(),
    )
    snap = snapshot_services(producer)

    def viewer(ctx):
        catalog = SDMCatalog.attach(ctx)
        return catalog.read_global(runid=1, dataset="d", timestep=1)

    job = mpirun(viewer, 2, machine=fast_test(),
                 services=sdm_services(seed_from=snap))
    for data in job.values:
        np.testing.assert_allclose(data, np.arange(GLOBAL) * 1.0 + 1)


def test_chunked_write_rejects_duplicate_map_entries():
    """Canonical writes reject duplicate gids via the file view; the
    chunked path must refuse them too instead of writing an ambiguous
    chunk whose read and reorganize could disagree."""

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=16)
        handle = sdm.set_attributes(result)
        mine = np.array([3, 3, 7], dtype=np.int64) + 8 * ctx.rank
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0)

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)


def test_level1_chunked_writes_do_not_grow_index_cache():
    """Per-timestep level-1 files can never share index blocks; the
    reference-not-copy cache must not accumulate unhittable map copies."""

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_1,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=16)
        handle = sdm.set_attributes(result)
        mine = np.array([1, 0, 5], dtype=np.int64) + 8 * ctx.rank  # irregular
        sdm.data_view(handle, "d", mine)
        for t in range(4):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        back = np.empty(len(mine))
        sdm.read(handle, "d", 3, back)
        sdm.finalize(handle)
        return mine, back, len(sdm.storage_order._index_cache)

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    for mine, back, cache_size in job.values:
        np.testing.assert_allclose(back, mine * 1.0 + 3)
        assert cache_size == 0


def test_canonical_read_skips_chunk_table_probe():
    """Reads of canonical instances stay a single metadata statement —
    the chunk_table lookup only happens for .chunked file names."""

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CANONICAL)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=8)
        handle = sdm.set_attributes(result)
        mine = np.arange(4, dtype=np.int64) + 4 * ctx.rank
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0)
        db = ctx.service("db")
        before = db.n_statements
        back = np.empty(4)
        sdm.read(handle, "d", 0, back)
        delta = db.n_statements - before
        sdm.finalize(handle)
        return ctx.rank, delta

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    by_rank = dict(job.values)
    # The counter is database-global; rank 0 (the only rank issuing
    # statements) must have seen exactly its lookup_execution.
    assert by_rank[0] == 1


def test_unknown_storage_order_rejected():
    def program(ctx):
        SDM(ctx, "dp", storage_order="sideways")

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)


# ---------------------------------------------------------------------------
# First-fit extent reuse
# ---------------------------------------------------------------------------

def test_index_block_cache_drop_range():
    """Range eviction semantics: any byte overlap with [lo, hi) evicts,
    touching neither counters nor disjoint entries."""
    from repro.core.datapath import IndexBlockCache

    cache = IndexBlockCache()
    cache.put("f", 0, np.arange(4, dtype=np.int64))      # bytes [0, 32)
    cache.put("f", 32, np.arange(4, dtype=np.int64))     # bytes [32, 64)
    cache.put("f", 64, np.arange(2, dtype=np.int64))     # bytes [64, 80)
    cache.put("g", 0, np.arange(4, dtype=np.int64))      # other file
    cache.drop_range("f", 30, 64)  # clips the first, covers the second
    assert not cache.contains("f", 0, 4)
    assert not cache.contains("f", 32, 4)
    assert cache.contains("f", 64, 2)  # [64, 80) starts at hi: untouched
    assert cache.contains("g", 0, 4)
    # Eviction is no-count bookkeeping: the probes above used contains().
    assert cache.hits == 0 and cache.misses == 0


def equal_count_maps(seed, nprocs=NPROCS, n=GLOBAL):
    """Rank maps with identical per-rank counts (a permutation split
    evenly), so two instances written with different seeds land their
    chunks at identical offsets when one recycles the other's extent."""
    rng = np.random.default_rng(seed)
    maps = [m.astype(np.int64) for m in np.split(rng.permutation(n), nprocs)]
    for m in maps:  # the scenarios below need real index blocks
        s = np.sort(m)
        assert not (np.diff(s) == np.diff(s)[0]).all(), "arithmetic map"
    return maps


def test_first_fit_write_reuses_dead_extent_without_growing_file():
    """A chunked write whose bytes fit a reaped extent lands inside it
    (first-fit) instead of appending — the file stops growing under
    churn — and every representation still reads back exactly."""
    maps_a = equal_count_maps(seed=5)
    maps_b = equal_count_maps(seed=7)
    maps_c = equal_count_maps(seed=11)

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", maps_a[ctx.rank])
        sdm.write(handle, "d", 0, maps_a[ctx.rank] * 1.0)
        sdm.data_view(handle, "d", maps_b[ctx.rank])
        sdm.write(handle, "d", 1, maps_b[ctx.rank] * 2.0)
        # Flipping t0 reaps its (interior) region into a dead extent ...
        sdm.reorganize(handle, "d", 0)
        # ... which the equal-sized t2 must recycle rather than append to.
        sdm.data_view(handle, "d", maps_c[ctx.rank])
        sdm.write(handle, "d", 2, maps_c[ctx.rank] * 3.0)
        backs = []
        for t, maps in ((0, maps_a), (1, maps_b), (2, maps_c)):
            sdm.data_view(handle, "d", maps[ctx.rank])
            back = np.empty(len(maps[ctx.rank]))
            sdm.read(handle, "d", t, back)
            backs.append(back)
        sdm.finalize(handle)
        return backs

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    fname = "dp/d.chunked.dat"
    # t2 sits exactly where t0's region was; the extent is fully consumed
    # and the file did not grow past the two original instances.
    assert tables.lookup_execution(1, "d", 2)[:2] == (fname, 0)
    assert tables.free_bytes_in(fname) == 0
    t1_row = tables.lookup_execution(1, "d", 1)
    assert job.services["fs"].lookup(fname).size == t1_row[1] + t1_row[2]
    for rank, backs in enumerate(job.values):
        for t, maps in ((0, maps_a), (1, maps_b), (2, maps_c)):
            np.testing.assert_allclose(
                backs[t], maps[rank] * (t + 1.0),
                err_msg=f"t{t} read-back, rank {rank}",
            )


def test_first_fit_reuse_evicts_stale_cached_blocks_across_clients():
    """Regression: fresh rows publish at version 0, so a first-fit write
    recycling an extent re-creates ``(file, offset, 0)`` cache keys that
    a *pinned* reader may still hold from the dead instance — it read the
    old version after the flip, and its own release-time reap is what
    recorded the extent.  The reuse write must evict every registered
    cache's blocks in the recycled range, not just the writer's."""
    maps_a = equal_count_maps(seed=5)
    maps_b = equal_count_maps(seed=7)
    maps_c = equal_count_maps(seed=11)

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", maps_a[ctx.rank])
        sdm.write(handle, "d", 0, maps_a[ctx.rank] * 1.0)
        sdm.data_view(handle, "d", maps_b[ctx.rank])
        sdm.write(handle, "d", 1, maps_b[ctx.rank] * 2.0)
        catalog = SDMCatalog.attach(ctx)     # pins the pre-flip epoch
        sdm.reorganize(handle, "d", 0)       # the pin defers t0's reap
        lo = GLOBAL * ctx.rank // ctx.size
        hi = GLOBAL * (ctx.rank + 1) // ctx.size
        share = np.arange(lo, hi, dtype=np.int64)
        # The pinned read resolves the *old* chunked t0: it caches t0's
        # index blocks under version-0 keys in the soon-dead region.
        old = catalog.read_slice(1, "d", 0, share)
        catalog.release()                    # reap records the dead extent
        sdm.data_view(handle, "d", maps_c[ctx.rank])
        sdm.write(handle, "d", 2, maps_c[ctx.rank] * 3.0)  # recycles it
        # Same offsets, same counts, same version axis: without the
        # range eviction this read resolves t2 against t0's stale blocks.
        fresh = catalog.read_slice(1, "d", 2, share)
        sdm.finalize(handle)
        return share, old, fresh

    job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    assert tables.lookup_execution(1, "d", 2)[1] == 0  # reuse really happened
    for share, old, fresh in job.values:
        np.testing.assert_allclose(old, share * 1.0)
        np.testing.assert_allclose(fresh, share * 3.0)
