"""The paper-literal API aliases (repro.core.papi)."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import Organization, sdm_services
from repro.core.papi import (
    SDM_associate_attributes,
    SDM_data_view,
    SDM_finalize,
    SDM_import,
    SDM_initialize,
    SDM_make_datalist,
    SDM_make_importlist,
    SDM_partition_data_size,
    SDM_partition_index,
    SDM_partition_index_size,
    SDM_partition_table,
    SDM_read,
    SDM_release_importlist,
    SDM_set_attributes,
    SDM_write,
)
from repro.dtypes import DOUBLE
from repro.errors import SDMStateError, SimProcessCrashed
from repro.mesh import install_mesh_file, mesh_file_layout
from repro.mpi import mpirun

EDGE1 = np.array([0, 1, 0, 1], dtype=np.int64)
EDGE2 = np.array([1, 4, 3, 2], dtype=np.int64)
VECTOR = np.array([0, 1, 1, 0, 1], dtype=np.int64)


def services(sim, machine):
    built = sdm_services()(sim, machine)
    install_mesh_file(
        built["fs"], "uns3d.msh", EDGE1, EDGE2,
        {"x": np.arange(4, dtype=np.float64)},
        {"y": np.arange(5, dtype=np.float64) * 10},
    )
    return built


def test_papi_full_figure23_flow():
    layout = mesh_file_layout(4, 5, ["x"], ["y"])

    def program(ctx):
        sdm = SDM_initialize(ctx, "papi-app", organization=Organization.LEVEL_1)
        result = SDM_make_datalist(sdm, 2, ["p", "q"])
        SDM_associate_attributes(sdm, 2, result, data_type=DOUBLE, global_size=5)
        handle = SDM_set_attributes(sdm, 2, result)

        SDM_make_importlist(
            sdm, 4, ["edge1", "edge2", "x", "y"], file_name="uns3d.msh",
            index_names=["edge1", "edge2"],
        )
        chunk = sdm.import_index(
            "edge1", "edge2", layout.offset("edge1"), layout.offset("edge2"), 4
        )
        SDM_partition_table(sdm, VECTOR)
        local = SDM_partition_index(sdm, VECTOR, chunk)
        x_local = SDM_import(sdm, "x", layout.offset("x"), 4,
                             map_array=local.edge_map)
        y_local = SDM_import(sdm, "y", layout.offset("y"), 5,
                             map_array=local.node_map)
        SDM_release_importlist(sdm, 4)

        SDM_data_view(sdm, handle, "p", local.owned_nodes)
        SDM_write(sdm, handle, "p", 0, local.owned_nodes * 3.0)
        back = np.empty(len(local.owned_nodes))
        SDM_read(sdm, handle, "p", 0, back)
        SDM_finalize(sdm, handle, 2)
        return (
            SDM_partition_index_size(sdm),
            SDM_partition_data_size(sdm),
            x_local.tolist(),
            y_local.tolist(),
            back.tolist(),
        )

    job = mpirun(program, 2, machine=fast_test(), services=services)
    edges0, nodes0, x0, y0, back0 = job.values[0]
    assert (edges0, nodes0) == (2, 3)       # paper Figure 1: p0
    assert x0 == [0.0, 2.0]                  # x(0), x(2)
    assert y0 == [0.0, 10.0, 30.0]           # y(0), y(1), y(3)
    assert back0 == [0.0, 9.0]               # owned nodes 0, 3 times 3
    edges1, nodes1, x1, y1, back1 = job.values[1]
    assert (edges1, nodes1) == (3, 4)        # paper Figure 1: p1


def test_papi_count_mismatch_rejected():
    def program(ctx):
        sdm = SDM_initialize(ctx, "bad")
        SDM_make_datalist(sdm, 3, ["only", "two"])

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)
