"""Regular-application (block/subarray) data views."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services
from repro.core.regular import (
    block_decompose,
    subarray_element_ids,
    subarray_view,
)
from repro.dtypes import DOUBLE
from repro.errors import SDMStateError
from repro.mpi import mpirun


# ---------------------------------------------------------------------------
# block_decompose
# ---------------------------------------------------------------------------

def test_block_decompose_2x2_even():
    blocks = [block_decompose((8, 8), (2, 2), r) for r in range(4)]
    assert blocks[0] == ((4, 4), (0, 0))
    assert blocks[1] == ((4, 4), (0, 4))
    assert blocks[2] == ((4, 4), (4, 0))
    assert blocks[3] == ((4, 4), (4, 4))


def test_block_decompose_remainders_lead():
    sub0, st0 = block_decompose((7,), (3,), 0)
    sub1, st1 = block_decompose((7,), (3,), 1)
    sub2, st2 = block_decompose((7,), (3,), 2)
    assert (sub0, st0) == ((3,), (0,))
    assert (sub1, st1) == ((2,), (3,))
    assert (sub2, st2) == ((2,), (5,))


def test_block_decompose_covers_exactly():
    shape, grid = (10, 7, 5), (2, 3, 1)
    seen = np.zeros(shape, dtype=int)
    for r in range(6):
        sub, st = block_decompose(shape, grid, r)
        sl = tuple(slice(s, s + c) for s, c in zip(st, sub))
        seen[sl] += 1
    assert (seen == 1).all()


def test_block_decompose_validation():
    with pytest.raises(SDMStateError):
        block_decompose((8,), (2, 2), 0)       # rank mismatch
    with pytest.raises(SDMStateError):
        block_decompose((2,), (4,), 0)         # more procs than elements
    with pytest.raises(SDMStateError):
        block_decompose((8, 8), (2, 2), 4)     # rank outside grid


# ---------------------------------------------------------------------------
# subarray_element_ids
# ---------------------------------------------------------------------------

def test_element_ids_match_numpy_reference():
    shape, sub, starts = (4, 6), (2, 3), (1, 2)
    ids = subarray_element_ids(shape, sub, starts)
    ref = np.arange(24).reshape(shape)[1:3, 2:5].reshape(-1)
    np.testing.assert_array_equal(ids, ref)


def test_element_ids_3d_sorted():
    ids = subarray_element_ids((3, 3, 3), (2, 1, 2), (1, 0, 1))
    assert (np.diff(ids) > 0).all()
    ref = np.arange(27).reshape(3, 3, 3)[1:3, 0:1, 1:3].reshape(-1)
    np.testing.assert_array_equal(ids, ref)


def test_element_ids_out_of_bounds_rejected():
    with pytest.raises(SDMStateError):
        subarray_element_ids((4, 4), (3, 3), (2, 0))


# ---------------------------------------------------------------------------
# End to end: the regular-application SDM flow
# ---------------------------------------------------------------------------

def test_regular_2d_checkpoint_roundtrip():
    shape = (12, 12)
    grid = (2, 2)

    def program(ctx):
        sdm = SDM(ctx, "regular", organization=Organization.LEVEL_3)
        result = sdm.make_datalist(["field"])
        sdm.associate_attributes(result, data_type=DOUBLE,
                                 global_size=int(np.prod(shape)))
        handle = sdm.set_attributes(result)
        sub, starts = block_decompose(shape, grid, ctx.rank)
        subarray_view(sdm, handle, "field", shape, sub, starts)
        # Block values = global row-major index, so the file is checkable.
        block = (
            np.arange(np.prod(shape)).reshape(shape)
            [starts[0]:starts[0]+sub[0], starts[1]:starts[1]+sub[1]]
        ).astype(np.float64)
        sdm.write(handle, "field", 0, block.reshape(-1))
        back = np.empty(block.size)
        sdm.read(handle, "field", 0, back)
        sdm.finalize(handle)
        return block.reshape(-1), back

    job = mpirun(program, 4, machine=fast_test(), services=sdm_services())
    for wrote, back in job.values:
        np.testing.assert_array_equal(wrote, back)
    # The global file is the row-major array 0..143.
    fs = job.services["fs"]
    whole = fs.lookup("regular/group1.dat").store.read(
        0, int(np.prod(shape)) * 8
    ).view(np.float64)
    np.testing.assert_array_equal(whole, np.arange(np.prod(shape), dtype=np.float64))


def test_subarray_view_size_mismatch_rejected():
    def program(ctx):
        sdm = SDM(ctx, "regular")
        result = sdm.make_datalist(["field"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=10)
        handle = sdm.set_attributes(result)
        subarray_view(sdm, handle, "field", (4, 4), (2, 2), (0, 0))

    from repro.errors import SimProcessCrashed

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)
