"""The maintenance service layer: background reorganization off the
critical path, chunked-file compaction over free extents, snapshot-
surviving work queues, and index-block cache maintenance."""

import json

import numpy as np
import pytest

from repro.apps.fun3d import Fun3dRunConfig, run_fun3d_sdm
from repro.config import fast_test, origin2000
from repro.core import (
    SDM,
    Organization,
    sdm_services,
    snapshot_services,
)
from repro.core.layout import CANONICAL, CHUNKED
from repro.dtypes import DOUBLE
from repro.errors import SDMStateError, SimProcessCrashed
from repro.mesh import box_tet_mesh, install_mesh_file, mesh_file_layout
from repro.metadb.schema import SDMTables
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

NPROCS = 4
GLOBAL = 32


def irregular_maps(nprocs=NPROCS, n=GLOBAL, seed=3):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    cuts = np.sort(rng.choice(np.arange(1, n), nprocs - 1, replace=False))
    return [p.astype(np.int64) for p in np.split(perm, cuts)]


def checkpoint_program(maps, n=GLOBAL, level=Organization.LEVEL_2,
                       timesteps=3, body=None):
    """Write ``timesteps`` chunked instances, run ``body(sdm, handle)``,
    read everything back."""

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=level, storage_order=CHUNKED,
                  reorganize_mode="background")
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        for t in range(timesteps):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        extra = body(sdm, handle) if body is not None else None
        backs = []
        for t in range(timesteps):
            back = np.empty(len(mine))
            sdm.read(handle, "d", t, back)
            backs.append(back)
        sdm.finalize(handle)
        return mine, backs, extra

    return program


# ---------------------------------------------------------------------------
# Background reorganization
# ---------------------------------------------------------------------------


def test_background_reorganize_flips_metadata_and_preserves_reads():
    maps = irregular_maps()

    def body(sdm, handle):
        for t in range(2):
            sdm.reorganize(handle, "d", t)  # enqueued, constructor mode
        sdm.drain_maintenance()

    job = mpirun(checkpoint_program(maps, body=body), NPROCS,
                 machine=fast_test(), services=sdm_services())
    for mine, backs, _ in job.values:
        for t, back in enumerate(backs):
            np.testing.assert_allclose(back, mine * 1.0 + t)
    tables = SDMTables(job.services["db"])
    for t in range(2):
        assert tables.chunks_for(1, "d", t) == []
        fname, base, nbytes = tables.lookup_execution(1, "d", t)
        assert fname == "dp/d.dat"
        data = (
            job.services["fs"].lookup(fname).store
            .read(base, GLOBAL * 8).view(np.float64)
        )
        np.testing.assert_allclose(data, np.arange(GLOBAL) * 1.0 + t)
    # Timestep 2 was never enqueued: still chunked.
    assert tables.chunks_for(1, "d", 2) != []
    # The queue is drained: no pending rows survive.
    assert tables.pending_maintenance() == []


def test_background_enqueue_is_cheap_and_work_completes_after_ranks_exit():
    """The critical-path claim: enqueueing costs metadata only (a
    locate probe plus the queue row), independent of data size; the
    exchange itself runs on the workers, which the simulator still waits
    for after the application ranks finish — without any drain."""
    n = 64 * 1024  # large enough that the exchange dwarfs the metadata
    maps = irregular_maps(n=n, seed=5)

    def make_program(mode):
        def program(ctx):
            sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                      storage_order=CHUNKED)
            result = sdm.make_datalist(["d"])
            sdm.associate_attributes(result, data_type=DOUBLE,
                                     global_size=n)
            handle = sdm.set_attributes(result)
            mine = maps[ctx.rank]
            sdm.data_view(handle, "d", mine)
            sdm.write(handle, "d", 0, mine * 1.0)
            t0 = ctx.now
            sdm.reorganize(handle, "d", 0, mode=mode)
            cost = ctx.now - t0
            sdm.finalize(handle)
            return cost

        return program

    sync = mpirun(make_program("sync"), NPROCS, machine=origin2000(),
                  services=sdm_services())
    background = mpirun(make_program("background"), NPROCS,
                        machine=origin2000(), services=sdm_services())
    for bg_cost in background.values:
        assert bg_cost < min(sync.values) * 0.2
    # The flip still happened — after the ranks exited.
    tables = SDMTables(background.services["db"])
    assert tables.chunks_for(1, "d", 0) == []
    assert tables.lookup_execution(1, "d", 0)[0] == "dp/d.dat"
    assert tables.pending_maintenance() == []


def test_background_reorganize_without_service_rejected():
    def program(ctx):
        services = dict(ctx.services)
        services.pop("maint")
        ctx.services = services
        sdm = SDM(ctx, "dp", storage_order=CHUNKED,
                  reorganize_mode="background")
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=8)
        handle = sdm.set_attributes(result)
        mine = np.arange(4, dtype=np.int64) + 4 * ctx.rank
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0)
        sdm.reorganize(handle, "d", 0)

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)


def test_unknown_reorganize_mode_rejected():
    def program(ctx):
        SDM(ctx, "dp", reorganize_mode="later")

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)


# ---------------------------------------------------------------------------
# Free extents and compaction
# ---------------------------------------------------------------------------


def test_reorganize_records_interior_extent_and_reclaims_topmost():
    """An interior freed region becomes an extent_table row; freeing the
    topmost region retreats the cursor and strands no extents."""
    maps = irregular_maps()

    def body(sdm, handle):
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        # t0 is interior (t1, t2 live above): extent recorded.
        sdm.reorganize(handle, "d", 0, mode="sync")
        free_mid = None
        if sdm.ctx.rank == 0:
            free_mid = sdm.tables.free_bytes_in(fname, proc=sdm.ctx.proc)
        free_mid = sdm.comm.bcast(free_mid, root=0)
        # t2 is topmost: the cursor retreats instead.
        sdm.reorganize(handle, "d", 2, mode="sync")
        free_after = None
        cursor = None
        if sdm.ctx.rank == 0:
            free_after = sdm.tables.free_bytes_in(fname, proc=sdm.ctx.proc)
            cursor = sdm.tables.max_offset_in_file(fname, proc=sdm.ctx.proc)
        return sdm.comm.bcast((free_mid, free_after, cursor), root=0)

    job = mpirun(checkpoint_program(maps, body=body), NPROCS,
                 machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    for mine, backs, (free_mid, free_after, cursor) in job.values:
        # t0's region held index blocks + data.
        assert free_mid > GLOBAL * 8
        assert free_after == free_mid  # t2's region retreated, not recorded
        for t, back in enumerate(backs):
            np.testing.assert_allclose(back, mine * 1.0 + t)
    # Only t1 lives in the chunked file now; the cursor sits at its end.
    where = tables.lookup_execution(1, "d", 1)
    assert where[0] == "dp/d.chunked.dat"
    assert cursor == where[1] + where[2]


def test_compaction_packs_live_bytes_and_zeroes_extents():
    """Reorganize interior instances, compact, and the file shrinks to
    exactly its live bytes with every read still byte-identical —
    including chunks whose shared index blocks sat in the dead region."""
    maps = irregular_maps()

    def body(sdm, handle):
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        # t0 wrote the shared index blocks; freeing it strands t1/t2's
        # shared references in a dead region — the hard compaction case.
        sdm.reorganize(handle, "d", 0)
        sdm.compact(fname)  # queued behind the reorganize
        sdm.drain_maintenance()
        return fname

    job = mpirun(checkpoint_program(maps, body=body), NPROCS,
                 machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    fs = job.services["fs"]
    for mine, backs, fname in job.values:
        for t, back in enumerate(backs):
            np.testing.assert_allclose(back, mine * 1.0 + t)
    fname = job.values[0][2]
    assert tables.free_bytes_in(fname) == 0
    # Live bytes = the two surviving instances, back to back from 0.
    rows = tables.executions_in_file(fname)
    assert [r[2] for r in rows] == [1, 2]  # timesteps, ascending base
    assert rows[0][3] == 0
    live = sum(r[4] for r in rows)
    assert fs.lookup(fname).size == live
    # Chunk maps point inside the packed file.
    for _r, _d, t, base, nbytes in rows:
        for ch in tables.chunks_for(1, "d", t):
            assert 0 <= ch.index_offset <= ch.data_offset < live


def test_compaction_preserves_index_block_sharing():
    """Two live instances sharing one index block keep sharing it after
    the slide — the packed file stores each map once."""
    maps = irregular_maps()

    def body(sdm, handle):
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        sdm.reorganize(handle, "d", 0)
        sdm.compact(fname)
        sdm.drain_maintenance()
        return fname

    job = mpirun(checkpoint_program(maps, body=body), NPROCS,
                 machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    fname = job.values[0][2]
    c1 = {c.rank: c for c in tables.chunks_for(1, "d", 1)}
    c2 = {c.rank: c for c in tables.chunks_for(1, "d", 2)}
    shared = [
        r for r in c1
        if c1[r].index_offset != c1[r].data_offset
        and c2[r].index_offset == c1[r].index_offset
    ]
    assert shared  # irregular maps: at least one non-dense shared block


def test_compacting_fully_dead_file_truncates_to_zero():
    maps = irregular_maps()

    def body(sdm, handle):
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        for t in range(3):
            sdm.reorganize(handle, "d", t)
        sdm.compact(fname)
        sdm.drain_maintenance()
        return fname

    job = mpirun(checkpoint_program(maps, body=body), NPROCS,
                 machine=fast_test(), services=sdm_services())
    fname = job.values[0][2]
    assert job.services["fs"].lookup(fname).size == 0
    tables = SDMTables(job.services["db"])
    assert tables.free_bytes_in(fname) == 0
    for mine, backs, _ in job.values:
        for t, back in enumerate(backs):
            np.testing.assert_allclose(back, mine * 1.0 + t)


def test_compacting_unknown_file_is_noop():
    def program(ctx):
        sdm = SDM(ctx, "dp", storage_order=CHUNKED)
        sdm.compact("dp/never-written.chunked.dat", mode="sync")
        sdm.finalize()
        return True

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert all(job.values)


def test_chunked_writes_after_compaction_roundtrip():
    """The append cursor lands at the packed end; post-compaction writes
    and reads (write-side reference cache included) stay correct."""
    maps = irregular_maps()

    def body(sdm, handle):
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        sdm.reorganize(handle, "d", 0)
        sdm.compact(fname)
        sdm.drain_maintenance()
        mine = maps[sdm.ctx.rank]
        sdm.write(handle, "d", 3, mine * 1.0 + 3)
        back = np.empty(len(mine))
        sdm.read(handle, "d", 3, back)
        return back

    job = mpirun(checkpoint_program(maps, body=body), NPROCS,
                 machine=fast_test(), services=sdm_services())
    for mine, backs, back3 in job.values:
        for t, back in enumerate(backs):
            np.testing.assert_allclose(back, mine * 1.0 + t)
        np.testing.assert_allclose(back3, mine * 1.0 + 3)


# ---------------------------------------------------------------------------
# Snapshot-surviving queues
# ---------------------------------------------------------------------------


def test_deferred_backlog_survives_snapshot_and_next_job_adopts_it():
    maps = irregular_maps()

    def body(sdm, handle):
        sdm.reorganize(handle, "d", 0)  # recorded, never run (deferred)

    producer = mpirun(
        checkpoint_program(maps, body=body), NPROCS, machine=fast_test(),
        services=sdm_services(maintenance_mode="deferred"),
    )
    for mine, backs, _ in producer.values:  # still served chunked
        for t, back in enumerate(backs):
            np.testing.assert_allclose(back, mine * 1.0 + t)
    t1 = SDMTables(producer.services["db"])
    pending = t1.pending_maintenance()
    assert [j.kind for j in pending] == ["reorganize"]
    assert t1.chunks_for(1, "d", 0) != []

    snap = snapshot_services(producer)
    assert "maintenance_table" in json.loads(snap.db_dump)["tables"]

    def later(ctx):
        sdm = SDM(ctx, "other-app")  # a different application entirely
        sdm.drain_maintenance()
        sdm.finalize()

    consumer = mpirun(later, NPROCS, machine=fast_test(),
                      services=sdm_services(seed_from=snap))
    t2 = SDMTables(consumer.services["db"])
    assert t2.pending_maintenance() == []
    assert t2.chunks_for(1, "d", 0) == []
    fname, base, nbytes = t2.lookup_execution(1, "d", 0)
    assert fname == "dp/d.dat"
    data = (
        consumer.services["fs"].lookup(fname).store
        .read(base, GLOBAL * 8).view(np.float64)
    )
    np.testing.assert_allclose(data, np.arange(GLOBAL) * 1.0)
    assert consumer.services["maint"].n_adopted == 1


# ---------------------------------------------------------------------------
# Index-block cache maintenance
# ---------------------------------------------------------------------------


def test_index_cache_serves_warm_reads_without_file_traffic():
    n = 32
    # Genuinely irregular maps: constant-stride maps are arithmetic chunks
    # now and store no index block at all, leaving nothing to cache.
    maps = irregular_maps(n=n, seed=11)

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        for t in range(2):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        fs = ctx.service("fs")
        back = np.empty(len(mine))
        before = fs.bytes_read
        sdm.read(handle, "d", 0, back)  # cold: fetches the index blocks
        cold_bytes = fs.bytes_read - before
        before = fs.bytes_read
        sdm.read(handle, "d", 1, back)  # warm: t1 shares t0's blocks
        warm_bytes = fs.bytes_read - before
        sdm.finalize(handle)
        return cold_bytes, warm_bytes, sdm.index_cache.hits, back

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=sdm_services())
    for cold, warm, hits, back in job.values:
        assert hits > 0
        assert warm < cold  # index-block fetches gone: data bytes only


def test_index_cache_dropped_when_cursor_retreats_over_blocks():
    """Reorganize reclaims the file, a dense write overwrites the cached
    blocks' bytes, and a re-view read must re-fetch, not serve stale
    gids."""
    n = 64
    maps = irregular_maps(n=n, seed=13)  # irregular: index blocks exist

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        irregular = maps[ctx.rank]
        sdm.data_view(handle, "d", irregular)
        sdm.write(handle, "d", 0, irregular * 1.0)
        back = np.empty(len(irregular))
        sdm.read(handle, "d", 0, back)  # caches t0's index blocks
        sdm.reorganize(handle, "d", 0, mode="sync")  # cursor retreats to 0
        block = n // ctx.size
        dense = np.arange(ctx.rank * block, (ctx.rank + 1) * block,
                          dtype=np.int64)
        sdm.data_view(handle, "d", dense)
        sdm.write(handle, "d", 1, dense * 2.0)
        sdm.data_view(handle, "d", irregular)
        sdm.write(handle, "d", 2, irregular * 3.0)
        back2 = np.empty(len(irregular))
        sdm.read(handle, "d", 2, back2)
        sdm.finalize(handle)
        return irregular, back2

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=sdm_services())
    for irregular, back2 in job.values:
        np.testing.assert_allclose(back2, irregular * 3.0)


# ---------------------------------------------------------------------------
# History writes as maintenance clients
# ---------------------------------------------------------------------------


def _history_setup(cells=3):
    mesh = box_tet_mesh(cells, cells, cells)
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    part = multilevel_kway(g, NPROCS, seed=0)
    rng = np.random.default_rng(3)
    x, y = rng.standard_normal(mesh.n_edges), rng.standard_normal(mesh.n_nodes)

    def services():
        base = sdm_services()

        def factory(sim, machine):
            services = base(sim, machine)
            install_mesh_file(services["fs"], "uns3d.msh", mesh.edge1,
                              mesh.edge2, {"x": x}, {"y": y})
            return services

        return factory

    return mesh, part, services


def test_history_wait_blocks_until_slice_is_on_disk():
    mesh, part, services = _history_setup()
    layout = mesh_file_layout(mesh.n_edges, mesh.n_nodes, ["x"], ["y"])

    def program(ctx):
        sdm = SDM(ctx, "fun3d")
        sdm.make_importlist(["edge1", "edge2", "x", "y"],
                            file_name="uns3d.msh",
                            index_names=["edge1", "edge2"])
        chunk = sdm.import_index("edge1", "edge2", layout.offset("edge1"),
                                 layout.offset("edge2"), mesh.n_edges)
        local = sdm.partition_index(part, chunk)
        reg = sdm.index_registry(local)
        was_done = reg.done
        reg.wait(ctx.proc)  # blocks in virtual time on the worker
        now_done = reg.done
        # Read-your-writes: this rank's slice is on disk after wait().
        fs = ctx.service("fs")
        size_after_wait = fs.lookup(reg.file_name).size
        reg.wait(ctx.proc)  # second wait returns immediately
        sdm.finalize()
        return was_done, now_done, size_after_wait

    job = mpirun(program, NPROCS, machine=origin2000(), services=services())
    assert any(not was for was, _, _ in job.values)  # genuinely async
    for _, now_done, size in job.values:
        assert now_done
        assert size > 0


def test_fun3d_driver_background_maintenance_roundtrip():
    """The driver knobs compose: chunked writes, background reorganize,
    compaction, and read-back in one run."""
    mesh, part, services = _history_setup()
    problem = None
    from repro.mesh import fun3d_like_problem

    problem = fun3d_like_problem(3)
    g = Graph.from_edges(problem.mesh.n_nodes, problem.mesh.edge1,
                         problem.mesh.edge2)
    part = multilevel_kway(g, NPROCS, seed=1)
    base = sdm_services()

    def factory(sim, machine):
        built = base(sim, machine)
        install_mesh_file(built["fs"], "uns3d.msh", problem.mesh.edge1,
                          problem.mesh.edge2, problem.edge_arrays,
                          problem.node_arrays)
        return built

    cfg_sync = Fun3dRunConfig(timesteps=2, storage_order="chunked",
                              reorganize_after=True, read_back=True,
                              register_history=False)
    cfg_bg = Fun3dRunConfig(timesteps=2, storage_order="chunked",
                            reorganize_after=True, reorganize_mode="background",
                            compact_after=True, read_back=True,
                            register_history=False)
    sync = mpirun(lambda ctx: run_fun3d_sdm(ctx, problem, part, cfg_sync),
                  NPROCS, machine=fast_test(), services=lambda s, m: factory(s, m))
    bg = mpirun(lambda ctx: run_fun3d_sdm(ctx, problem, part, cfg_bg),
                NPROCS, machine=fast_test(), services=lambda s, m: factory(s, m))
    for r_sync, r_bg in zip(sync.values, bg.values):
        assert r_bg.read_checksum == pytest.approx(r_sync.read_checksum)
    # Background run compacted its chunked files down to live bytes.
    tables = SDMTables(bg.services["db"])
    fs = bg.services["fs"]
    for fname in fs.list_files():
        if ".chunked" in fname:
            assert fs.lookup(fname).size == tables.free_bytes_in(fname) == 0


def test_catalog_cache_invalidated_by_compaction():
    """A catalog viewer's index-block cache must not survive a compaction
    that moves blocks under it (regression: the catalog cache is
    registered with the maintenance service like SDM's)."""
    from repro.core.catalog import SDMCatalog

    maps = irregular_maps()

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        for t in range(3):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        catalog = SDMCatalog.attach(ctx)
        first = catalog.read_slice(1, "d", 1, mine)  # caches t0's blocks
        # Reorganize t0 (the block writer) and compact: blocks move.
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        sdm.reorganize(handle, "d", 0, mode="sync")
        sdm.compact(fname, mode="sync")
        second = catalog.read_slice(1, "d", 1, mine)
        sdm.finalize(handle)
        return mine, first, second

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=sdm_services())
    for mine, first, second in job.values:
        np.testing.assert_allclose(first, mine * 1.0 + 1)
        np.testing.assert_allclose(second, mine * 1.0 + 1)


def test_background_reorganize_of_canonical_instance_is_local_noop():
    """Already-canonical instances never reach the worker queue; the call
    returns the canonical file like the sync fast path."""
    maps = irregular_maps()

    def body(sdm, handle):
        sdm.reorganize(handle, "d", 0, mode="sync")
        n_before = sdm.maintenance.n_enqueued
        fname = sdm.reorganize(handle, "d", 0, mode="background")
        return fname, sdm.maintenance.n_enqueued - n_before

    job = mpirun(checkpoint_program(maps, body=body), NPROCS,
                 machine=fast_test(), services=sdm_services())
    for mine, backs, (fname, enqueued) in job.values:
        assert fname == "dp/d.dat"
        assert enqueued == 0
        for t, back in enumerate(backs):
            np.testing.assert_allclose(back, mine * 1.0 + t)


def test_divergent_enqueue_parameters_rejected():
    """Ranks enqueueing the same kind with different parameters at the
    same queue position is a program-order error, not a silent collapse
    onto the first enqueuer's job."""

    def program(ctx):
        sdm = SDM(ctx, "dp", storage_order=CHUNKED)
        sdm.compact(f"dp/rank{ctx.rank}.chunked.dat", mode="background")

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test(), services=sdm_services())
    assert isinstance(ei.value.__cause__, SDMStateError)
