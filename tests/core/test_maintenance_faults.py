"""Crash recovery across jobs: orphaned queue rows, interrupted flips,
leaked leases and pins, and the shutdown leak audit.

The pattern throughout: job 1 runs under a :class:`FaultPlan` that kills
one process at a registered fault point, its services are snapshotted
exactly as the history-file experiments carry state between runs, and
job 2 starts from the snapshot — recovery happens at the maintenance
service's attach (stale boot generations) and is observable through
``stats()`` counters and byte-identical reads."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.core.catalog import SDMCatalog
from repro.core.layout import CHUNKED
from repro.dtypes import DOUBLE
from repro.metadb.schema import SDMTables
from repro.mpi import mpirun
from repro.simt import FaultPlan

NPROCS = 4
GLOBAL = 32


def irregular_maps(nprocs=NPROCS, n=GLOBAL, seed=3):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    cuts = np.sort(rng.choice(np.arange(1, n), nprocs - 1, replace=False))
    return [p.astype(np.int64) for p in np.split(perm, cuts)]


def producer_program(maps, n=GLOBAL, timesteps=2):
    """Chunked writes, then a background reorganize of timestep 0."""

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED, reorganize_mode="background",
                  snapshot=True)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        for t in range(timesteps):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        sdm.reorganize(handle, "d", 0)
        back = np.empty(len(mine))
        sdm.read(handle, "d", 0, back)
        sdm.finalize(handle)
        return mine, back

    return program


def consumer_program(ctx):
    """A later job: attach, let adoption/recovery run, drain, leave."""
    sdm = SDM(ctx, "other-app")
    sdm.drain_maintenance()
    sdm.finalize()
    return sdm.stats()


def reorganized_data(job):
    tables = SDMTables(job.services["db"])
    fname, base, _nbytes = tables.lookup_execution(1, "d", 0)
    assert fname == "dp/d.dat"
    return (
        job.services["fs"].lookup(fname).store
        .read(base, GLOBAL * 8).view(np.float64)
    )


def crashed_producer(point, victim):
    maps = irregular_maps()
    job = mpirun(
        producer_program(maps), NPROCS, machine=fast_test(),
        services=sdm_services(),
        fault_plan=FaultPlan(point, victim=victim),
    )
    assert victim in job.crashed
    return job


# ---------------------------------------------------------------------------
# Orphaned maintenance rows: crash between queue insert and worker spawn
# ---------------------------------------------------------------------------


def test_enqueue_crash_leaves_row_for_next_job_to_adopt():
    """The orphan-adoption contract's crash window: rank 0 dies right
    after ``record_maintenance`` inserts the queue row, before any
    worker spawns for it.  The row is the pending work — the next job's
    attach adopts and executes it."""
    producer = crashed_producer("maint:enqueued", "rank0")
    t1 = SDMTables(producer.services["db"])
    assert [j.kind for j in t1.pending_maintenance()] == ["reorganize"]
    # The dead rank's snapshot pin is still in pin_table — the crash
    # skipped finalize.
    assert any(c == "sdm:dp:r1" for _p, c, _e in t1.all_pins())

    snap = snapshot_services(producer)
    consumer = mpirun(consumer_program, NPROCS, machine=fast_test(),
                      services=sdm_services(seed_from=snap))
    maint = consumer.services["maint"]
    assert maint.stats()["adopted"] == 1
    t2 = SDMTables(consumer.services["db"])
    assert t2.pending_maintenance() == []
    assert t2.chunks_for(1, "d", 0) == []
    np.testing.assert_allclose(reorganized_data(consumer),
                               np.arange(GLOBAL) * 1.0)
    # The abandoned pin was from a dead boot generation: reaped at attach.
    assert maint.stats()["pins_expired"] >= 1
    assert t2.all_pins() == []


# ---------------------------------------------------------------------------
# Interrupted flips: roll back before the commit point, forward after
# ---------------------------------------------------------------------------


def test_crash_before_commit_rolls_back_then_adoption_retries():
    """The maintenance worker dies holding the flip lease with only the
    intent journaled: attach recovery releases the stale lease and rolls
    the flip back (reads stay chunked and correct), then adopts the
    surviving queue row and re-runs the reorganize to completion."""
    producer = crashed_producer("flip:intent", "maint-w0")
    # The producer's own reads, issued while the flip hung, were right.
    for mine, back in (v for v in producer.values if v is not None):
        np.testing.assert_allclose(back, mine * 1.0)
    t1 = SDMTables(producer.services["db"])
    # Reorganize journals its intent against the file it is emptying.
    assert t1.files_with_flip_intents() == ["dp/d.chunked.dat"]
    assert any(h.startswith("maint:") for _f, h, _b in t1.all_leases())

    snap = snapshot_services(producer)
    consumer = mpirun(consumer_program, NPROCS, machine=fast_test(),
                      services=sdm_services(seed_from=snap))
    maint = consumer.services["maint"]
    assert maint.stats()["leases_recovered"] == 1
    assert maint.stats()["flips_rolled_back"] == 1
    t2 = SDMTables(consumer.services["db"])
    assert t2.files_with_flip_intents() == []
    assert t2.all_leases() == []
    # Adoption retried the job after the rollback: reorganize complete.
    assert maint.stats()["adopted"] == 1
    assert t2.chunks_for(1, "d", 0) == []
    np.testing.assert_allclose(reorganized_data(consumer),
                               np.arange(GLOBAL) * 1.0)


def test_crash_after_commit_rolls_forward():
    """Death after ``commit_flip`` but before the reap: the flip is
    published, so recovery finishes the reap instead of undoing the
    flip — the committed metadata wins and no dead versions linger."""
    producer = crashed_producer("flip:published", "maint-w0")
    t1 = SDMTables(producer.services["db"])
    assert t1.files_with_flip_intents() == []

    snap = snapshot_services(producer)
    consumer = mpirun(consumer_program, NPROCS, machine=fast_test(),
                      services=sdm_services(seed_from=snap))
    maint = consumer.services["maint"]
    assert maint.stats()["leases_recovered"] == 1
    assert maint.stats()["flips_rolled_forward"] == 1
    t2 = SDMTables(consumer.services["db"])
    assert t2.all_leases() == []
    assert t2.dead_executions_in_file("dp/d.chunked.dat") == []
    assert t2.chunks_for(1, "d", 0) == []
    np.testing.assert_allclose(reorganized_data(consumer),
                               np.arange(GLOBAL) * 1.0)


# ---------------------------------------------------------------------------
# Shutdown leak audit
# ---------------------------------------------------------------------------


def test_finalize_reports_leaked_leases_and_pins_on_every_rank():
    def program(ctx):
        sdm = SDM(ctx, "leaky")
        if ctx.rank == 0:
            # Simulate a client bug: rows in this client's name that no
            # release will ever match.
            sdm.tables.create_pin(sdm.lease_holder, 0, proc=ctx.proc,
                                  now=ctx.proc.now)
            assert sdm.tables.try_acquire_lease(
                "stray.L3", sdm.lease_holder, proc=ctx.proc,
                now=ctx.proc.now,
            )
        sdm.finalize()
        return sdm.stats()

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    for stats in job.values:
        assert stats["leaked_leases"] == 1
        assert stats["leaked_pins"] == 1


def test_clean_run_audits_zero_leaks():
    maps = irregular_maps(nprocs=2)

    def program(ctx):
        sdm = SDM(ctx, "clean", storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.0)
        sdm.finalize(handle)
        cat = SDMCatalog.attach(ctx)
        data = cat.read_global(1, "d", 0)
        cat.release()
        return sdm.stats(), cat.stats(), data

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    for sdm_stats, cat_stats, data in job.values:
        assert sdm_stats["leaked_leases"] == 0
        assert sdm_stats["leaked_pins"] == 0
        assert cat_stats["leaked_pins"] == 0
        np.testing.assert_allclose(data, np.arange(GLOBAL) * 1.0)
    tables = SDMTables(job.services["db"])
    assert tables.all_leases() == []
    assert tables.all_pins() == []
