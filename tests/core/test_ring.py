"""Ring index distribution: correctness against a direct reference."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.core.growable import GrowableArray
from repro.core.ring import EdgeChunk, owned_nodes_of, ring_partition_index
from repro.mesh import box_tet_mesh
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway


def reference_partition(edge1, edge2, part, rank):
    """Direct (non-distributed) computation of the paper's rule."""
    keep = (part[edge1] == rank) | (part[edge2] == rank)
    gids = np.flatnonzero(keep)
    le1, le2 = edge1[keep], edge2[keep]
    owned = np.flatnonzero(part == rank)
    node_map = np.union1d(owned, np.unique(np.concatenate([le1, le2])) if len(le1) else [])
    return gids, le1, le2, node_map


def chunked(edge1, edge2, rank, size):
    counts = np.full(size, len(edge1) // size)
    counts[: len(edge1) % size] += 1
    start = int(counts[:rank].sum())
    end = start + int(counts[rank])
    return EdgeChunk(
        edge1=edge1[start:end].astype(np.int64),
        edge2=edge2[start:end].astype(np.int64),
        gid_start=start,
    )


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
def test_ring_matches_reference_on_mesh(nprocs):
    mesh = box_tet_mesh(4, 4, 4)
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    part = multilevel_kway(g, nprocs, seed=0) if nprocs > 1 else np.zeros(
        mesh.n_nodes, dtype=np.int64
    )

    def program(ctx):
        chunk = chunked(mesh.edge1, mesh.edge2, ctx.rank, ctx.size)
        local = ring_partition_index(ctx, part, chunk)
        return local

    job = mpirun(program, nprocs, machine=fast_test())
    for rank, local in enumerate(job.values):
        gids, le1, le2, node_map = reference_partition(
            mesh.edge1, mesh.edge2, part, rank
        )
        np.testing.assert_array_equal(local.edge_map, gids)
        np.testing.assert_array_equal(local.edge1, le1)
        np.testing.assert_array_equal(local.edge2, le2)
        np.testing.assert_array_equal(local.node_map, node_map)
        np.testing.assert_array_equal(local.owned_nodes, np.flatnonzero(part == rank))


def test_ring_paper_example_exact():
    """Figure 1: the worked example must come out exactly as printed."""
    edge1 = np.array([0, 1, 0, 1], dtype=np.int64)
    edge2 = np.array([1, 4, 3, 2], dtype=np.int64)
    part = np.array([0, 1, 1, 0, 1], dtype=np.int64)

    def program(ctx):
        chunk = chunked(edge1, edge2, ctx.rank, ctx.size)
        return ring_partition_index(ctx, part, chunk)

    job = mpirun(program, 2, machine=fast_test())
    p0, p1 = job.values
    assert p0.edge_map.tolist() == [0, 2]        # edges 0, 2 -> process 0
    assert p1.edge_map.tolist() == [0, 1, 3]     # edges 0, 1, 3 -> process 1
    assert p0.node_map.tolist() == [0, 1, 3]     # y(0) y(1) y(3)
    assert p1.node_map.tolist() == [0, 1, 2, 4]  # y(0) y(1) y(2) y(4)
    assert p0.owned_nodes.tolist() == [0, 3]
    assert p1.owned_nodes.tolist() == [1, 2, 4]


def test_every_edge_lands_somewhere_and_ghosts_replicate():
    mesh = box_tet_mesh(3, 3, 3)
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    part = multilevel_kway(g, 4, seed=2)

    def program(ctx):
        chunk = chunked(mesh.edge1, mesh.edge2, ctx.rank, ctx.size)
        return ring_partition_index(ctx, part, chunk)

    job = mpirun(program, 4, machine=fast_test())
    coverage = np.zeros(mesh.n_edges, dtype=int)
    for local in job.values:
        coverage[local.edge_map] += 1
    assert (coverage >= 1).all()
    # Cut edges appear exactly twice, internal edges exactly once.
    cross = part[mesh.edge1] != part[mesh.edge2]
    np.testing.assert_array_equal(coverage[cross], 2)
    np.testing.assert_array_equal(coverage[~cross], 1)


def test_ring_charges_time_for_examination_and_comm():
    mesh = box_tet_mesh(4, 4, 4)
    part = np.zeros(mesh.n_nodes, dtype=np.int64)
    part[mesh.n_nodes // 2 :] = 1

    def program(ctx):
        chunk = chunked(mesh.edge1, mesh.edge2, ctx.rank, ctx.size)
        t0 = ctx.now
        ring_partition_index(ctx, part, chunk)
        return ctx.now - t0

    job = mpirun(program, 2)  # origin2000 cost model
    assert min(job.values) > 0


def test_growable_array_doubles_and_tracks_copies():
    g = GrowableArray(np.int64, initial_capacity=4)
    for i in range(100):
        g.append(i)
    assert len(g) == 100
    assert g.capacity >= 100
    assert g.n_grows >= 4
    assert g.bytes_copied > 0
    np.testing.assert_array_equal(g.view(), np.arange(100))
    g2 = GrowableArray(np.float64, initial_capacity=2)
    g2.extend(np.arange(10, dtype=np.float64))
    np.testing.assert_array_equal(g2.array(), np.arange(10, dtype=np.float64))
