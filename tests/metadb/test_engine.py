"""Mini-SQL engine: DDL, DML, queries, aggregates, persistence."""

import pytest

from repro.errors import (
    ColumnNotFound,
    SQLSyntaxError,
    SQLTypeError,
    TableExists,
    TableNotFound,
)
from repro.metadb import Database


@pytest.fixture()
def db():
    d = Database()
    d.execute(
        "CREATE TABLE runs (runid INTEGER, dataset TEXT, t REAL, payload BLOB)"
    )
    return d


def test_create_insert_select_roundtrip(db):
    db.execute("INSERT INTO runs VALUES (1, 'p', 0.5, NULL)")
    db.execute("INSERT INTO runs VALUES (?, ?, ?, ?)", (2, "q", 1.5, b"\x01\x02"))
    rows = db.execute("SELECT * FROM runs")
    assert rows == [(1, "p", 0.5, None), (2, "q", 1.5, b"\x01\x02")]


def test_create_duplicate_table_rejected(db):
    with pytest.raises(TableExists):
        db.execute("CREATE TABLE runs (x INTEGER)")
    db.execute("CREATE TABLE IF NOT EXISTS runs (x INTEGER)")  # no error


def test_drop_table(db):
    db.execute("DROP TABLE runs")
    with pytest.raises(TableNotFound):
        db.execute("SELECT * FROM runs")
    db.execute("DROP TABLE IF EXISTS runs")  # no error
    with pytest.raises(TableNotFound):
        db.execute("DROP TABLE runs")


def test_insert_with_explicit_columns_fills_nulls(db):
    db.execute("INSERT INTO runs (dataset, runid) VALUES ('x', 9)")
    rows = db.execute("SELECT * FROM runs")
    assert rows == [(9, "x", None, None)]


def test_insert_duplicate_column_rejected(db):
    # Regression: a repeated column used to silently keep the later value.
    with pytest.raises(SQLTypeError):
        db.execute("INSERT INTO runs (runid, runid) VALUES (1, 2)")
    with pytest.raises(SQLTypeError):
        db.execute(
            "INSERT INTO runs (dataset, runid, dataset) VALUES ('a', 1, 'b')"
        )
    assert db.execute("SELECT * FROM runs") == []


def test_type_validation(db):
    with pytest.raises(SQLTypeError):
        db.execute("INSERT INTO runs VALUES (?, ?, ?, ?)", ("no", "p", 0.0, None))
    with pytest.raises(SQLTypeError):
        db.execute("INSERT INTO runs VALUES (?, ?, ?, ?)", (1, 42, 0.0, None))
    with pytest.raises(SQLTypeError):
        db.execute("INSERT INTO runs VALUES (1, 'p', 'notreal', NULL)")


def test_integer_accepts_into_real_column(db):
    db.execute("INSERT INTO runs VALUES (1, 'p', 3, NULL)")
    assert db.execute("SELECT t FROM runs") == [(3.0,)]


def test_where_comparisons(db):
    for i in range(5):
        db.execute("INSERT INTO runs VALUES (?, ?, ?, NULL)", (i, f"d{i}", i * 1.0))
    assert db.execute("SELECT runid FROM runs WHERE runid = 3") == [(3,)]
    assert db.execute("SELECT runid FROM runs WHERE runid != 3") == [
        (0,), (1,), (2,), (4,),
    ]
    assert db.execute("SELECT runid FROM runs WHERE runid >= 3") == [(3,), (4,)]
    assert db.execute("SELECT runid FROM runs WHERE t < 2.0") == [(0,), (1,)]
    assert db.execute("SELECT runid FROM runs WHERE dataset = 'd2'") == [(2,)]


def test_where_boolean_logic(db):
    for i in range(6):
        db.execute("INSERT INTO runs VALUES (?, ?, ?, NULL)", (i, f"d{i % 2}", 0.0))
    rows = db.execute(
        "SELECT runid FROM runs WHERE dataset = 'd0' AND runid > 1"
    )
    assert rows == [(2,), (4,)]
    rows = db.execute(
        "SELECT runid FROM runs WHERE runid = 0 OR runid = 5"
    )
    assert rows == [(0,), (5,)]
    rows = db.execute(
        "SELECT runid FROM runs WHERE NOT (dataset = 'd0') AND runid < 4"
    )
    assert rows == [(1,), (3,)]


def test_where_between(db):
    for i in range(5):
        db.execute("INSERT INTO runs VALUES (?, ?, ?, NULL)", (i, f"d{i}", i * 1.0))
    assert db.execute("SELECT runid FROM runs WHERE runid BETWEEN 1 AND 3") == [
        (1,), (2,), (3,),
    ]
    assert db.execute(
        "SELECT runid FROM runs WHERE runid BETWEEN ? AND ?", (3, 1)
    ) == []
    # BETWEEN binds tighter than AND.
    rows = db.execute(
        "SELECT runid FROM runs WHERE runid BETWEEN 1 AND 3 AND dataset = 'd2'"
    )
    assert rows == [(2,)]
    rows = db.execute("SELECT runid FROM runs WHERE NOT (runid BETWEEN 1 AND 3)")
    assert rows == [(0,), (4,)]


def test_where_is_null(db):
    db.execute("INSERT INTO runs VALUES (1, 'a', NULL, NULL)")
    db.execute("INSERT INTO runs VALUES (2, 'b', 1.0, NULL)")
    assert db.execute("SELECT runid FROM runs WHERE t IS NULL") == [(1,)]
    assert db.execute("SELECT runid FROM runs WHERE t IS NOT NULL") == [(2,)]
    # NULL never satisfies a comparison.
    assert db.execute("SELECT runid FROM runs WHERE t < 100.0") == [(2,)]


def test_order_by_and_limit(db):
    for i, name in enumerate(["c", "a", "b"]):
        db.execute("INSERT INTO runs VALUES (?, ?, 0.0, NULL)", (i, name))
    assert db.execute("SELECT dataset FROM runs ORDER BY dataset") == [
        ("a",), ("b",), ("c",),
    ]
    assert db.execute("SELECT runid FROM runs ORDER BY dataset DESC LIMIT 2") == [
        (0,), (2,),
    ]


def test_order_by_multiple_keys(db):
    data = [(1, "b"), (0, "b"), (1, "a"), (0, "a")]
    for rid, ds in data:
        db.execute("INSERT INTO runs VALUES (?, ?, 0.0, NULL)", (rid, ds))
    rows = db.execute("SELECT runid, dataset FROM runs ORDER BY dataset, runid DESC")
    assert rows == [(1, "a"), (0, "a"), (1, "b"), (0, "b")]


def test_aggregates(db):
    for i in range(4):
        db.execute("INSERT INTO runs VALUES (?, 'd', ?, NULL)", (i, float(i)))
    assert db.execute("SELECT COUNT(*) FROM runs") == [(4,)]
    assert db.execute("SELECT MAX(runid) FROM runs") == [(3,)]
    assert db.execute("SELECT MIN(t) FROM runs") == [(0.0,)]
    assert db.execute("SELECT SUM(runid) FROM runs") == [(6,)]
    assert db.execute("SELECT MAX(runid) FROM runs WHERE runid < 2") == [(1,)]


def test_aggregate_on_empty_is_null(db):
    assert db.execute("SELECT MAX(runid) FROM runs") == [(None,)]
    assert db.execute("SELECT COUNT(*) FROM runs") == [(0,)]


def test_update(db):
    db.execute("INSERT INTO runs VALUES (1, 'old', 0.0, NULL)")
    db.execute("INSERT INTO runs VALUES (2, 'old', 0.0, NULL)")
    db.execute("UPDATE runs SET dataset = 'new', t = ? WHERE runid = 2", (9.5,))
    rows = db.execute("SELECT dataset, t FROM runs ORDER BY runid")
    assert rows == [("old", 0.0), ("new", 9.5)]


def test_delete(db):
    for i in range(4):
        db.execute("INSERT INTO runs VALUES (?, 'd', 0.0, NULL)", (i,))
    db.execute("DELETE FROM runs WHERE runid < 2")
    assert db.execute("SELECT runid FROM runs") == [(2,), (3,)]
    db.execute("DELETE FROM runs")
    assert db.execute("SELECT COUNT(*) FROM runs") == [(0,)]


def test_string_literal_escaping(db):
    db.execute("INSERT INTO runs VALUES (1, 'it''s', 0.0, NULL)")
    assert db.execute("SELECT dataset FROM runs") == [("it's",)]


def test_unknown_column_rejected(db):
    with pytest.raises(ColumnNotFound):
        db.execute("SELECT nope FROM runs")


def test_syntax_errors_rejected():
    db = Database()
    for bad in [
        "",
        "SELEC * FROM t",
        "SELECT * FROM",
        "CREATE TABLE t",
        "INSERT INTO t VALUES 1, 2",
        "SELECT * FROM t WHERE",
        "SELECT * FROM t LIMIT x",
    ]:
        with pytest.raises(SQLSyntaxError):
            db.execute(bad)


def test_missing_parameter_rejected(db):
    from repro.errors import MetaDBError

    with pytest.raises(MetaDBError):
        db.execute("INSERT INTO runs VALUES (?, ?, ?, ?)", (1,))


def test_query_dicts(db):
    db.execute("INSERT INTO runs VALUES (7, 'p', 0.5, NULL)")
    rows = db.query_dicts("SELECT runid, dataset FROM runs")
    assert rows == [{"runid": 7, "dataset": "p"}]
    rows = db.query_dicts("SELECT * FROM runs")
    assert rows[0]["t"] == 0.5
    assert db.query_dicts("SELECT COUNT(*) FROM runs") == [{"count": 1}]


def test_persistence_roundtrip(tmp_path, db):
    db.execute("INSERT INTO runs VALUES (1, 'p', 0.5, ?)", (b"\xde\xad",))
    path = str(tmp_path / "meta.json")
    db.save(path)
    loaded = Database.load(path)
    assert loaded.execute("SELECT * FROM runs") == [(1, "p", 0.5, b"\xde\xad")]
    # Schema survives too.
    loaded.execute("INSERT INTO runs VALUES (2, 'q', 1.0, NULL)")
    assert loaded.execute("SELECT COUNT(*) FROM runs") == [(2,)]
