"""Statement cache, conjunct planner, index maintenance, cost accounting."""

import pytest

from repro.config import origin2000
from repro.errors import MetaDBError, SQLTypeError
from repro.metadb import Database, SDMTables
from repro.metadb.schema import SDM_INDEXES
from repro.metadb.table import index_name
from repro.simt import Simulator


@pytest.fixture()
def db():
    d = Database()
    d.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    for i in range(20):
        d.execute("INSERT INTO t VALUES (?, ?, ?)", (i % 5, f"s{i % 3}", i))
    return d


# -- statement cache ----------------------------------------------------


def test_statement_cache_parses_once(db):
    parses = db.n_parses
    for i in range(10):
        db.execute("SELECT * FROM t WHERE a = ?", (i,))
    assert db.n_parses == parses + 1


def test_query_dicts_single_parse(db):
    parses = db.n_parses
    rows = db.query_dicts("SELECT a, b FROM t WHERE c = ?", (7,))
    assert rows == [{"a": 2, "b": "s1"}]
    assert db.n_parses == parses + 1  # regression: used to parse twice
    db.query_dicts("SELECT a, b FROM t WHERE c = ?", (8,))
    assert db.n_parses == parses + 1


def test_cache_is_per_sql_text(db):
    parses = db.n_parses
    db.execute("SELECT * FROM t WHERE a = 1")
    db.execute("SELECT * FROM t WHERE a = 2")
    assert db.n_parses == parses + 2


# -- equality planner ----------------------------------------------------


def test_indexed_equality_probes_skip_the_scan(db):
    db.create_index("t", "a")
    db.execute("SELECT * FROM t WHERE a = ?", (3,))
    assert (db.n_index_probes, db.n_full_scans) == (1, 0)
    # AND with an unindexed residue still probes, then filters.
    rows = db.execute("SELECT c FROM t WHERE a = ? AND c >= ?", (3, 10))
    assert (db.n_index_probes, db.n_full_scans) == (2, 0)
    assert rows == [(13,), (18,)]


def test_unindexed_or_non_equality_falls_back_to_scan(db):
    db.create_index("t", "a")
    db.execute("SELECT * FROM t WHERE c = ?", (7,))  # no index on c
    db.execute("SELECT * FROM t WHERE a > ?", (3,))  # no ordered index on a
    db.execute("SELECT * FROM t WHERE a = ? OR c = ?", (1, 7))  # OR is opaque
    assert (db.n_index_probes, db.n_full_scans) == (0, 3)


def test_probe_results_match_scan_results(db):
    expect = db.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1"))
    db.create_index("t", "a")
    db.create_index("t", "b")
    assert db.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1")) == expect
    assert db.n_index_probes == 1


def test_null_equality_matches_nothing(db):
    db.execute("INSERT INTO t (b, c) VALUES ('only-b', 99)")  # a is NULL
    db.create_index("t", "a")
    assert db.execute("SELECT * FROM t WHERE a = ?", (None,)) == []
    # ... but IS NULL still finds the row (scan path).
    assert db.execute("SELECT c FROM t WHERE a IS NULL") == [(99,)]


# -- composite indexes ---------------------------------------------------


def test_composite_index_probes_once(db):
    expect = db.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1"))
    db.create_index("t", ("a", "b"))
    db.n_full_scans = 0
    rows = db.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1"))
    assert rows == expect and rows
    assert (db.n_index_probes, db.n_full_scans) == (1, 0)
    # Reversed conjunct order binds the same composite key.
    assert db.execute("SELECT * FROM t WHERE b = ? AND a = ?", ("s1", 2)) == expect


def test_composite_index_needs_every_column_bound(db):
    db.create_index("t", ("a", "b"))
    db.execute("SELECT * FROM t WHERE a = ?", (2,))  # prefix only: no probe
    assert (db.n_index_probes, db.n_full_scans) == (0, 1)


def test_planner_prefers_smallest_candidate_set(db):
    db.create_index("t", "a")  # buckets of 4
    db.create_index("t", ("a", "b"))  # buckets of 1-2
    db.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1"))
    probed = db.tables["t"].indexes[index_name("hash", ("a", "b"))]
    assert max(len(b) for b in probed.buckets.values()) < 4


# -- ordered indexes -----------------------------------------------------


def test_range_predicates_use_ordered_index(db):
    expect_gt = db.execute("SELECT * FROM t WHERE c > ?", (15,))
    expect_between = db.execute("SELECT * FROM t WHERE c BETWEEN ? AND ?", (5, 8))
    db.create_index("t", "c", kind="ordered")
    scans = db.n_full_scans
    assert db.execute("SELECT * FROM t WHERE c > ?", (15,)) == expect_gt
    assert (
        db.execute("SELECT * FROM t WHERE c BETWEEN ? AND ?", (5, 8))
        == expect_between
    )
    assert db.n_full_scans == scans and db.n_index_probes == 2


def test_ordered_prefix_plus_range(db):
    expect = db.execute("SELECT * FROM t WHERE a = ? AND c >= ?", (3, 10))
    db.create_index("t", ("a", "c"), kind="ordered")
    db.n_full_scans = 0
    assert db.execute("SELECT * FROM t WHERE a = ? AND c >= ?", (3, 10)) == expect
    assert (db.n_index_probes, db.n_full_scans) == (1, 0)


def test_order_by_limit_served_without_sort(db):
    expect = db.execute("SELECT * FROM t WHERE a = ? ORDER BY c DESC LIMIT 1", (3,))
    db.create_index("t", ("a", "c"), kind="ordered")
    db.n_full_scans = 0
    got = db.execute("SELECT * FROM t WHERE a = ? ORDER BY c DESC LIMIT 1", (3,))
    assert got == expect
    assert (db.n_sorted_probes, db.n_index_probes, db.n_full_scans) == (1, 0, 0)
    # Whole-table ORDER BY (no WHERE) walks the index too.
    db.create_index("t", "c", kind="ordered")
    expect_all = sorted(r[2] for r in db.tables["t"].rows)
    assert [r[0] for r in db.execute("SELECT c FROM t ORDER BY c")] == expect_all
    assert db.n_sorted_probes == 2


def test_order_by_with_residual_where_still_sorts(db):
    # The WHERE is not fully covered by the index prefix, so the engine
    # must fall back to filter-then-sort (narrowed by the hash index).
    db.create_index("t", ("a", "c"), kind="ordered")
    db.create_index("t", "b")
    rows = db.execute(
        "SELECT c FROM t WHERE a = ? AND b = ? ORDER BY c DESC", (2, "s1")
    )
    assert rows == [(7,)]
    assert db.n_sorted_probes == 0 and db.n_index_probes == 1


def test_incomparable_range_value_falls_back_to_scan(db):
    db.create_index("t", "c", kind="ordered")
    with pytest.raises(MetaDBError):  # scan raises the usual type error
        db.execute("SELECT * FROM t WHERE c > ?", ("not-an-int",))


# -- index maintenance ---------------------------------------------------


def test_index_maintained_across_insert_update_delete(db):
    db.create_index("t", "a")
    db.execute("INSERT INTO t VALUES (42, 'new', 100)")
    assert db.execute("SELECT c FROM t WHERE a = 42") == [(100,)]
    db.execute("UPDATE t SET a = ? WHERE c = ?", (43, 100))
    assert db.execute("SELECT c FROM t WHERE a = 42") == []
    assert db.execute("SELECT c FROM t WHERE a = 43") == [(100,)]
    db.execute("DELETE FROM t WHERE a = ?", (0,))
    assert db.execute("SELECT * FROM t WHERE a = 0") == []
    assert db.execute("SELECT COUNT(*) FROM t") == [(17,)]


def _assert_indexes_match_rebuild(db, table_name="t"):
    table = db.tables[table_name]
    for index in table.indexes.values():
        fresh = table.make_index(index.columns, index.kind)
        if index.kind == "hash":
            assert index.buckets == fresh.buckets
        else:
            assert index.entries == fresh.entries


def test_delete_then_reinsert_keeps_indexes_consistent(db):
    # Regression: deletion compacts rowids; a subsequent insert must land
    # in the rebuilt structures, not stale pre-compaction buckets.
    db.create_index("t", "a")
    db.create_index("t", ("a", "c"), kind="ordered")
    db.execute("DELETE FROM t WHERE a = ?", (2,))
    db.execute("INSERT INTO t VALUES (2, 'back', 50)")
    _assert_indexes_match_rebuild(db)
    assert db.execute("SELECT b, c FROM t WHERE a = 2") == [("back", 50)]
    assert db.execute(
        "SELECT c FROM t WHERE a = ? AND c >= ?", (2, 0)
    ) == [(50,)]


def test_update_moves_row_between_buckets(db):
    # Regression: an UPDATE that changes an indexed column must move the
    # row out of its old hash bucket and ordered slot.
    db.create_index("t", "a")
    db.create_index("t", "c", kind="ordered")
    db.execute("UPDATE t SET a = ?, c = ? WHERE c = ?", (99, 1000, 7))
    _assert_indexes_match_rebuild(db)
    assert db.execute("SELECT c FROM t WHERE a = 99") == [(1000,)]
    assert db.execute("SELECT a FROM t WHERE a = 2 AND c = 7") == []
    assert db.execute("SELECT c FROM t WHERE c > ?", (900,)) == [(1000,)]


def test_update_to_null_key_and_back(db):
    db.create_index("t", "c", kind="ordered")
    db.execute("UPDATE t SET c = NULL WHERE a = ?", (1,))
    _assert_indexes_match_rebuild(db)
    assert db.execute("SELECT COUNT(*) FROM t WHERE c IS NULL") == [(4,)]
    assert db.execute("SELECT * FROM t WHERE c > ?", (-1000,)) == [
        r for r in db.execute("SELECT * FROM t") if r[2] is not None
    ]
    db.execute("UPDATE t SET c = ? WHERE c IS NULL", (0,))
    _assert_indexes_match_rebuild(db)


# -- cost accounting (regression: rows *touched*, not rows returned) ----


def test_write_statements_charged_for_matched_rows():
    sim = Simulator()
    machine = origin2000()
    db = Database(sim, machine)
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    for i in range(50):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, i % 2))

    def program(proc):
        spans = []
        for sql, params in (
            ("UPDATE t SET a = 0 WHERE b = ?", (1,)),
            ("DELETE FROM t WHERE b = ?", (1,)),
            ("INSERT INTO t VALUES (100, 100)", ()),
        ):
            t0 = proc.now
            db.execute(sql, params, proc=proc)
            spans.append(proc.now - t0)
        return spans

    p = sim.spawn(program)
    sim.run()
    t_update, t_delete, t_insert = p.result
    cost = machine.database.statement_time
    assert t_update == pytest.approx(cost(rows=25))
    assert t_delete == pytest.approx(cost(rows=25))
    assert t_insert == pytest.approx(cost(rows=1))


# -- schema wiring -------------------------------------------------------


def test_create_all_declares_sdm_indexes():
    tables = SDMTables(Database())
    tables.create_all()
    tables.create_all()  # idempotent, indexes included
    for table, columns, kind in SDM_INDEXES:
        assert index_name(kind, columns) in tables.db.tables[table].indexes
    tables.record_execution(1, "p", 0, "f.L3", 0, 100)
    assert tables.lookup_execution(1, "p", 0) == ("f.L3", 0, 100)
    assert tables.db.n_index_probes > 0
    assert tables.db.n_full_scans == 0


def test_max_offset_served_by_sorted_probe():
    tables = SDMTables(Database())
    tables.create_all()
    for step in range(10):
        tables.record_execution(1, "p", step, "grp.L3", step * 100, 100)
        tables.record_execution(1, "q", step, "other.L3", step * 50, 50)
    assert tables.max_offset_in_file("grp.L3") == 1000
    assert tables.max_offset_in_file("other.L3") == 500
    assert tables.max_offset_in_file("missing.L3") == 0
    assert tables.db.n_sorted_probes == 3
    assert tables.db.n_full_scans == 0


# -- index persistence ---------------------------------------------------


def test_indexes_survive_dump_loads_roundtrip(db):
    db.create_index("t", "a")
    db.create_index("t", ("a", "b"))
    db.create_index("t", ("a", "c"), kind="ordered")
    restored = Database.loads(db.dump())
    assert sorted(restored.tables["t"].indexes) == sorted(db.tables["t"].indexes)
    _assert_indexes_match_rebuild(restored)
    expect = db.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1"))
    assert restored.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1")) == expect
    assert (restored.n_index_probes, restored.n_full_scans) == (1, 0)


def test_snapshot_restored_catalog_probes_without_redeclaration():
    # Database.loads restores index declarations, so a reader attaching
    # to a snapshot answers the end-of-file probe from the ordered index
    # with no create_index / declare_indexes call of its own.
    producer = SDMTables(Database())
    producer.create_all()
    producer.record_execution(1, "p", 3, "f.L3", 300, 100)

    reader = SDMTables(Database.loads(producer.db.dump()))
    assert reader.db.tables["execution_table"].indexes.keys() == (
        producer.db.tables["execution_table"].indexes.keys()
    )
    assert reader.lookup_execution(1, "p", 3) == ("f.L3", 300, 100)
    assert reader.max_offset_in_file("f.L3") == 400
    assert (reader.db.n_sorted_probes, reader.db.n_full_scans) == (1, 0)
    reader.declare_indexes()  # still idempotent on a restored database
    assert reader.db.tables["execution_table"].indexes.keys() == (
        producer.db.tables["execution_table"].indexes.keys()
    )


# -- access-path cost model ----------------------------------------------


def costed_db():
    d = Database()
    d.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    # bucket b='x' holds 10 rows (c = 0..9); b='y' holds c = 10..19.
    for i in range(20):
        d.execute(
            "INSERT INTO t VALUES (?, ?, ?)",
            (i % 5, "x" if i < 10 else "y", i),
        )
    d.create_index("t", "b")
    d.create_index("t", "c", "ordered")
    return d


def test_cost_model_prefers_hash_over_slightly_smaller_slice():
    d = costed_db()
    # bucket('x') = 10 candidates; slice c >= 12 = 8.  Raw counts pick the
    # slice; the cost model knows a slice pays materialization + rowid
    # sorting per candidate and keeps the hash probe.
    rows = d.execute("SELECT * FROM t WHERE b = ? AND c >= ?", ("x", 12))
    assert rows == []
    assert (d.n_hash_paths, d.n_slice_paths) == (1, 0)


def test_cost_model_still_picks_much_smaller_slice():
    d = costed_db()
    # slice c >= 18 = 2 candidates: cheaper than the 10-row bucket even at
    # double per-candidate cost.
    rows = d.execute("SELECT c FROM t WHERE b = ? AND c >= ?", ("y", 18))
    assert rows == [(18,), (19,)]
    assert (d.n_hash_paths, d.n_slice_paths) == (0, 1)


def test_cost_model_result_matches_scan():
    plain = Database()
    plain.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    indexed = costed_db()
    for i in range(20):
        plain.execute(
            "INSERT INTO t VALUES (?, ?, ?)",
            (i % 5, "x" if i < 10 else "y", i),
        )
    for params in (("x", 3), ("x", 12), ("y", 3), ("y", 18)):
        sql = "SELECT * FROM t WHERE b = ? AND c >= ?"
        assert indexed.execute(sql, params) == plain.execute(sql, params)
    assert plain.n_index_probes == 0


# -- index-backed MIN/MAX aggregates -------------------------------------


def agg_db():
    d = Database()
    d.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    d.create_index("t", ("a", "c"), "ordered")
    d.create_index("t", "c", "ordered")
    for i in range(12):
        d.execute("INSERT INTO t VALUES (?, ?, ?)", (i % 3, f"s{i}", i))
    return d


def test_max_runid_allocation_is_an_index_probe():
    tables = SDMTables(Database())
    tables.create_all()
    assert tables.next_runid() == 1
    for runid in (1, 2, 7):
        tables.insert_run(runid, "app", 3, 100, 10)
    probes = tables.db.n_agg_probes
    assert tables.next_runid() == 8
    assert tables.db.n_agg_probes == probes + 1


def test_min_max_from_slice_ends():
    d = agg_db()
    assert d.execute("SELECT MAX(c) FROM t") == [(11,)]
    assert d.execute("SELECT MIN(c) FROM t") == [(0,)]
    assert d.execute("SELECT MAX(c) FROM t WHERE a = ?", (1,)) == [(10,)]
    assert d.execute("SELECT MIN(c) FROM t WHERE a = ?", (2,)) == [(2,)]
    assert d.execute("SELECT MAX(c) FROM t WHERE c <= ?", (8,)) == [(8,)]
    assert d.execute(
        "SELECT MIN(c) FROM t WHERE a = ? AND c > ?", (0, 3)
    ) == [(6,)]
    assert d.n_agg_probes == 6
    assert d.n_full_scans == 0


def test_aggregate_probe_empty_and_null_semantics():
    d = agg_db()
    # Empty match: NULL aggregate, exactly as the scan path reports it.
    assert d.execute("SELECT MAX(c) FROM t WHERE a = ?", (9,)) == [(None,)]
    # NULL keys are ignored by MIN/MAX but present in the index.
    d.execute("INSERT INTO t VALUES (?, ?, ?)", (1, "null-c", None))
    assert d.execute("SELECT MIN(c) FROM t WHERE a = ?", (1,)) == [(1,)]
    d2 = Database()
    d2.execute("CREATE TABLE t (c INTEGER)")
    d2.create_index("t", "c", "ordered")
    d2.execute("INSERT INTO t VALUES (?)", (None,))
    assert d2.execute("SELECT MAX(c) FROM t") == [(None,)]
    assert d2.n_agg_probes >= 1


def test_aggregate_probe_requires_complete_where():
    d = agg_db()
    probes = d.n_agg_probes
    # OR cannot be answered from a slice: falls back to filter + aggregate.
    rows = d.execute("SELECT MAX(c) FROM t WHERE a = ? OR a = ?", (0, 1))
    assert rows == [(10,)]
    assert d.n_agg_probes == probes
    # SUM has no slice-ends answer either.
    assert d.execute("SELECT SUM(c) FROM t WHERE a = ?", (0,)) == [(18,)]
    assert d.n_agg_probes == probes


def test_aggregate_probe_matches_scan_everywhere():
    plain = Database()
    plain.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    indexed = agg_db()
    for i in range(12):
        plain.execute("INSERT INTO t VALUES (?, ?, ?)", (i % 3, f"s{i}", i))
    queries = [
        ("SELECT MAX(c) FROM t", ()),
        ("SELECT MIN(c) FROM t", ()),
        ("SELECT MAX(c) FROM t WHERE a = ?", (0,)),
        ("SELECT MAX(c) FROM t WHERE a = ?", (5,)),
        ("SELECT MIN(c) FROM t WHERE c >= ?", (7,)),
        ("SELECT MAX(c) FROM t WHERE c < ?", (7,)),
        ("SELECT MIN(c) FROM t WHERE a = ? AND c BETWEEN ? AND ?", (1, 3, 9)),
    ]
    for sql, params in queries:
        assert indexed.execute(sql, params) == plain.execute(sql, params), sql


def test_execute_many_bills_one_batched_statement():
    sim = Simulator()
    db = Database(sim, origin2000())

    class _Proc:
        """Minimal process stand-in: accumulates hold() charges."""
        held = 0.0
        def hold(self, dt):
            self.held += dt

    db.execute("CREATE TABLE t (a INTEGER)")
    single, batch = _Proc(), _Proc()
    for i in range(8):
        db.execute("INSERT INTO t VALUES (?)", (i,), proc=single)
    db.execute_many("INSERT INTO t VALUES (?)", [(i,) for i in range(8)],
                    proc=batch)
    model = origin2000().database
    assert single.held == pytest.approx(8 * model.statement_time(rows=1))
    assert batch.held == pytest.approx(model.statement_time(rows=8))
    assert batch.held < single.held
    assert db.execute("SELECT COUNT(*) FROM t") == [(16,)]


# -- bulk-load index path (execute_many INSERT) -------------------------


def test_bulk_insert_keeps_every_index_scan_identical():
    """execute_many's append_rows path must leave hash and ordered
    indexes exactly as per-row inserts would — probes, slices, sorted
    walks, and aggregates all agree with a fresh scan-only database."""
    import random

    rng = random.Random(11)
    rows = [(rng.randrange(6), f"s{rng.randrange(4)}", i)
            for i in range(200)]
    rng.shuffle(rows)

    indexed = Database()
    indexed.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    indexed.create_index("t", "a")
    indexed.create_index("t", ("a", "b"), "hash")
    indexed.create_index("t", ("a", "c"), "ordered")
    indexed.execute_many("INSERT INTO t VALUES (?, ?, ?)", rows)

    plain = Database()
    plain.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    for r in rows:
        plain.execute("INSERT INTO t VALUES (?, ?, ?)", r)

    queries = [
        ("SELECT * FROM t WHERE a = ?", (3,)),
        ("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1")),
        ("SELECT * FROM t WHERE a = ? AND c >= ? AND c < ?", (1, 20, 160)),
        ("SELECT c FROM t WHERE a = ? ORDER BY c DESC LIMIT 5", (4,)),
        ("SELECT MAX(c) FROM t WHERE a = ?", (0,)),
        ("SELECT * FROM t ORDER BY a, c", ()),
    ]
    for sql, params in queries:
        assert indexed.execute(sql, params) == plain.execute(sql, params), sql
    assert indexed.n_full_scans == 0  # every WHERE above used an index


def test_bulk_insert_ordered_index_matches_incremental_maintenance():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.create_index("t", "a", "ordered")
    db.execute("INSERT INTO t VALUES (?)", (5,))
    db.execute_many("INSERT INTO t VALUES (?)", [(9,), (1,), (5,), (3,)])
    index = db.tables["t"].ordered_indexes()[0]
    assert index.entries == sorted(index.entries)
    # Duplicate keys keep rowid-ascending (insertion) order.
    assert [rowid for key, rowid in index.entries
            if key == ((True, 5),)] == [0, 3]


def test_bulk_insert_bad_row_rejects_whole_batch():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.create_index("t", "a", "ordered")
    with pytest.raises(SQLTypeError):
        db.execute_many("INSERT INTO t VALUES (?)", [(1,), ("nope",)])
    assert db.execute("SELECT COUNT(*) FROM t") == [(0,)]
    assert db.tables["t"].ordered_indexes()[0].entries == []


# -- process-global statement cache -------------------------------------


def test_restored_database_reparses_nothing():
    """Database.loads restores share the process-global parse cache: the
    statements the original instance prepared cost a dict hit, not a
    parse, in the restored one."""
    from repro.metadb.engine import clear_global_statement_cache

    clear_global_statement_cache()
    sql = "SELECT * FROM shared_cache_t WHERE a = ?"
    db1 = Database()
    db1.execute("CREATE TABLE shared_cache_t (a INTEGER)")
    db1.execute("INSERT INTO shared_cache_t VALUES (?)", (1,))
    db1.execute(sql, (1,))
    assert db1.n_cold_parses >= 1

    db2 = Database.loads(db1.dump())
    cold_before = db2.n_cold_parses
    assert db2.execute(sql, (1,)) == [(1,)]
    assert db2.n_parses == 1  # instance cache was cold...
    assert db2.n_cold_parses == cold_before  # ...but nothing re-parsed


def test_global_cache_is_bounded_and_clearable():
    from repro.metadb import engine

    engine.clear_global_statement_cache()
    db = Database()
    db.execute("CREATE TABLE g (a INTEGER)")
    db.execute("SELECT * FROM g WHERE a = 1")
    assert len(engine._GLOBAL_STMT_CACHE) > 0
    engine.clear_global_statement_cache()
    assert len(engine._GLOBAL_STMT_CACHE) == 0
    # A fresh database re-parses after the clear (the cold baseline).
    db2 = Database()
    cold = db2.n_cold_parses
    db2.execute("CREATE TABLE g2 (a INTEGER)")
    assert db2.n_cold_parses == cold + 1
