"""Statement cache, equality planner, index maintenance, cost accounting."""

import pytest

from repro.config import origin2000
from repro.errors import SQLTypeError
from repro.metadb import Database, SDMTables
from repro.metadb.schema import SDM_INDEXES
from repro.simt import Simulator


@pytest.fixture()
def db():
    d = Database()
    d.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    for i in range(20):
        d.execute("INSERT INTO t VALUES (?, ?, ?)", (i % 5, f"s{i % 3}", i))
    return d


# -- statement cache ----------------------------------------------------


def test_statement_cache_parses_once(db):
    parses = db.n_parses
    for i in range(10):
        db.execute("SELECT * FROM t WHERE a = ?", (i,))
    assert db.n_parses == parses + 1


def test_query_dicts_single_parse(db):
    parses = db.n_parses
    rows = db.query_dicts("SELECT a, b FROM t WHERE c = ?", (7,))
    assert rows == [{"a": 2, "b": "s1"}]
    assert db.n_parses == parses + 1  # regression: used to parse twice
    db.query_dicts("SELECT a, b FROM t WHERE c = ?", (8,))
    assert db.n_parses == parses + 1


def test_cache_is_per_sql_text(db):
    parses = db.n_parses
    db.execute("SELECT * FROM t WHERE a = 1")
    db.execute("SELECT * FROM t WHERE a = 2")
    assert db.n_parses == parses + 2


# -- equality planner ----------------------------------------------------


def test_indexed_equality_probes_skip_the_scan(db):
    db.create_index("t", "a")
    db.execute("SELECT * FROM t WHERE a = ?", (3,))
    assert (db.n_index_probes, db.n_full_scans) == (1, 0)
    # AND with an unindexed residue still probes, then filters.
    rows = db.execute("SELECT c FROM t WHERE a = ? AND c >= ?", (3, 10))
    assert (db.n_index_probes, db.n_full_scans) == (2, 0)
    assert rows == [(13,), (18,)]


def test_unindexed_or_non_equality_falls_back_to_scan(db):
    db.create_index("t", "a")
    db.execute("SELECT * FROM t WHERE c = ?", (7,))  # no index on c
    db.execute("SELECT * FROM t WHERE a > ?", (3,))  # not an equality
    db.execute("SELECT * FROM t WHERE a = ? OR c = ?", (1, 7))  # OR is opaque
    assert (db.n_index_probes, db.n_full_scans) == (0, 3)


def test_probe_results_match_scan_results(db):
    expect = db.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1"))
    db.create_index("t", "a")
    db.create_index("t", "b")
    assert db.execute("SELECT * FROM t WHERE a = ? AND b = ?", (2, "s1")) == expect
    assert db.n_index_probes == 1


def test_null_equality_matches_nothing(db):
    db.execute("INSERT INTO t (b, c) VALUES ('only-b', 99)")  # a is NULL
    db.create_index("t", "a")
    assert db.execute("SELECT * FROM t WHERE a = ?", (None,)) == []
    # ... but IS NULL still finds the row (scan path).
    assert db.execute("SELECT c FROM t WHERE a IS NULL") == [(99,)]


def test_index_maintained_across_insert_update_delete(db):
    db.create_index("t", "a")
    db.execute("INSERT INTO t VALUES (42, 'new', 100)")
    assert db.execute("SELECT c FROM t WHERE a = 42") == [(100,)]
    db.execute("UPDATE t SET a = ? WHERE c = ?", (43, 100))
    assert db.execute("SELECT c FROM t WHERE a = 42") == []
    assert db.execute("SELECT c FROM t WHERE a = 43") == [(100,)]
    db.execute("DELETE FROM t WHERE a = ?", (0,))
    assert db.execute("SELECT * FROM t WHERE a = 0") == []
    assert db.execute("SELECT COUNT(*) FROM t") == [(17,)]


# -- cost accounting (regression: rows *touched*, not rows returned) ----


def test_write_statements_charged_for_matched_rows():
    sim = Simulator()
    machine = origin2000()
    db = Database(sim, machine)
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    for i in range(50):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, i % 2))

    def program(proc):
        spans = []
        for sql, params in (
            ("UPDATE t SET a = 0 WHERE b = ?", (1,)),
            ("DELETE FROM t WHERE b = ?", (1,)),
            ("INSERT INTO t VALUES (100, 100)", ()),
        ):
            t0 = proc.now
            db.execute(sql, params, proc=proc)
            spans.append(proc.now - t0)
        return spans

    p = sim.spawn(program)
    sim.run()
    t_update, t_delete, t_insert = p.result
    cost = machine.database.statement_time
    assert t_update == pytest.approx(cost(rows=25))
    assert t_delete == pytest.approx(cost(rows=25))
    assert t_insert == pytest.approx(cost(rows=1))


# -- schema wiring -------------------------------------------------------


def test_create_all_declares_sdm_indexes():
    tables = SDMTables(Database())
    tables.create_all()
    tables.create_all()  # idempotent, indexes included
    for table, column in SDM_INDEXES:
        assert column in tables.db.tables[table].indexes
    tables.record_execution(1, "p", 0, "f.L3", 0, 100)
    assert tables.lookup_execution(1, "p", 0) == ("f.L3", 0, 100)
    assert tables.db.n_index_probes > 0
    assert tables.db.n_full_scans == 0


def test_seeded_database_reindexes_via_declare_indexes():
    # Database.loads restores rows but not index declarations; a reader
    # attaching to a snapshot re-declares and probes again.
    producer = SDMTables(Database())
    producer.create_all()
    producer.record_execution(1, "p", 3, "f.L3", 300, 100)

    reader = SDMTables(Database.loads(producer.db.dump()))
    assert reader.db.tables["execution_table"].indexes == {}
    reader.declare_indexes()
    assert reader.lookup_execution(1, "p", 3) == ("f.L3", 300, 100)
    assert (reader.db.n_index_probes, reader.db.n_full_scans) == (1, 0)
