"""SDM schema accessors and the simulated query cost model."""

import pytest

from repro.config import origin2000
from repro.metadb import Database, SDMTables
from repro.metadb.schema import HistoryRankRecord, HistoryRecord
from repro.simt import Simulator


@pytest.fixture()
def tables():
    db = Database()
    t = SDMTables(db)
    t.create_all()
    return t


def test_create_all_is_idempotent(tables):
    tables.create_all()
    assert set(tables.db.tables) == {
        "run_table",
        "access_pattern_table",
        "execution_table",
        "chunk_table",
        "import_table",
        "index_table",
        "index_history_table",
        "maintenance_table",
        "extent_table",
        "epoch_table",
        "lease_table",
        "pin_table",
        "watermark_table",
    }


def test_runid_allocation(tables):
    assert tables.next_runid() == 1
    tables.insert_run(1, "fun3d", 3, 1000, 10)
    assert tables.next_runid() == 2
    tables.insert_run(5, "rt", 3, 2000, 5)
    assert tables.next_runid() == 6


def test_dataset_registration(tables):
    tables.register_dataset(1, "p", "DOUBLE", "ROW_MAJOR", 1000)
    tables.register_dataset(1, "q", "DOUBLE", "ROW_MAJOR", 1000)
    tables.register_dataset(2, "other", "INTEGER", "ROW_MAJOR", 5)
    assert tables.datasets_for_run(1) == ["p", "q"]


def test_execution_record_and_lookup(tables):
    tables.record_execution(1, "p", 10, "grp.L3", 0, 800)
    tables.record_execution(1, "q", 10, "grp.L3", 800, 800)
    assert tables.lookup_execution(1, "q", 10) == ("grp.L3", 800, 800)
    assert tables.lookup_execution(1, "q", 20) is None


def test_max_offset_in_file_for_appends(tables):
    assert tables.max_offset_in_file("f") == 0
    tables.record_execution(1, "p", 0, "f", 0, 100)
    tables.record_execution(1, "p", 1, "f", 100, 250)
    assert tables.max_offset_in_file("f") == 350


def test_import_registration(tables):
    tables.register_import(
        1, "edge1", "uns3d.msh", "INTEGER", "ROW_MAJOR",
        "DISTRIBUTED", "INDEX", 0, 100,
    )
    rec = tables.lookup_import(1, "edge1")
    assert rec["file_content"] == "INDEX"
    assert rec["num_elements"] == 100
    assert tables.lookup_import(1, "nothing") is None


def test_history_register_find_drop(tables):
    rec = HistoryRecord(problem_size=1000, num_procs=4, dimension=3, file_name="h.idx")
    ranks = [
        HistoryRankRecord(rank=r, edge_count=10 + r, node_count=5 + r,
                          edge_offset=r * 100, node_offset=r * 50)
        for r in range(4)
    ]
    tables.register_history(rec, ranks)
    found = tables.find_history(1000, 4)
    assert found == rec
    # Different process count: no match (the paper's history limitation).
    assert tables.find_history(1000, 8) is None
    r2 = tables.history_rank(1000, 4, 2)
    assert r2.edge_count == 12 and r2.node_offset == 100
    tables.drop_history(1000, 4)
    assert tables.find_history(1000, 4) is None
    assert tables.history_rank(1000, 4, 2) is None


def test_query_cost_charged_in_simulation():
    sim = Simulator()
    machine = origin2000()
    db = Database(sim, machine)
    tables = SDMTables(db)

    def program(proc):
        tables.create_all(proc=proc)
        t0 = proc.now
        tables.insert_run(1, "app", 3, 100, 1, proc=proc)
        dt = proc.now - t0
        return dt

    p = sim.spawn(program)
    sim.run()
    assert p.result >= machine.database.query_cost


def test_db_server_serializes_concurrent_statements():
    sim = Simulator()
    machine = origin2000()
    db = Database(sim, machine)
    tables = SDMTables(db)
    tables.create_all()

    def program(proc, r):
        tables.insert_run(r, "app", 3, 100, 1, proc=proc)
        return proc.now

    n = 12  # more than the server's connection pool
    procs = [sim.spawn(program, r, name=f"c{r}") for r in range(n)]
    sim.run()
    finish = [p.result for p in procs]
    # With a pool of 4, twelve 1-query clients finish in 3 waves.
    assert max(finish) >= 2.5 * min(finish)
    assert tables.next_runid() == n
