"""Recovery protocol over the metadata tables, host-side.

Exercises the crash-tolerance primitives without a simulator: flip
intent records and their exactly-one-way resolution, lease TTL and
boot-generation expiry with count-checked fencing, pin ageing, and the
per-file reap watermark.  Boot-generation death is modelled the way it
happens for real — ``Database.loads(db.dump())`` starts the next
incarnation, so every lease and pin stamped by the previous one reads
as dead."""

import pytest

from repro.errors import SDMStateError
from repro.metadb import Database, SDMTables
from repro.metadb.schema import (
    DEFAULT_PIN_TTL,
    EPOCH_INTENT,
    EPOCH_PUBLISHED,
    OPEN_EPOCH,
)


@pytest.fixture()
def tables():
    db = Database()
    t = SDMTables(db)
    t.create_all()
    return t


def seeded(tables):
    """One written instance in grp.L3 (the flip protocols' minimal prey)."""
    tables.record_execution(1, "p", 0, "grp.L3", 0, 100)
    return tables


def reincarnate(tables):
    """Dump/restore: the next database incarnation, as between jobs."""
    t2 = SDMTables(Database.loads(tables.db.dump()))
    assert t2.db.boot_id == tables.db.boot_id + 1
    return t2


# ---------------------------------------------------------------------------
# Flip intents: begin / commit / rollback / recover
# ---------------------------------------------------------------------------


def test_begin_flip_journals_intent_and_commit_publishes(tables):
    e = tables.begin_flip("grp.L3")
    assert e == 1
    assert tables.flip_intent("grp.L3") == e
    assert tables.files_with_flip_intents() == ["grp.L3"]
    tables.commit_flip("grp.L3", e)
    assert tables.flip_intent("grp.L3") is None
    assert tables.files_with_flip_intents() == []
    assert tables.current_epoch() == e


def test_commit_of_rolled_back_flip_is_fenced(tables):
    e = tables.begin_flip("grp.L3")
    tables.rollback_flip("grp.L3", e)
    with pytest.raises(SDMStateError):
        tables.commit_flip("grp.L3", e)


def test_rollback_restores_metadata_byte_identical(tables):
    seeded(tables)
    before = tables.db.execute(
        "SELECT * FROM execution_table ORDER BY file_offset"
    )
    e = tables.begin_flip("grp.L3")
    # The flip repoints the instance into a successor file, closing the
    # predecessor at e — exactly reorganize's publish step.
    tables.update_execution(1, "p", 0, "grp.L3", "grp.L4", 0, 100, e)
    assert tables.lookup_execution(1, "p", 0)[0] == "grp.L4"
    tables.rollback_flip("grp.L3", e)
    after = tables.db.execute(
        "SELECT * FROM execution_table ORDER BY file_offset"
    )
    assert after == before
    assert tables.lookup_execution(1, "p", 0)[0] == "grp.L3"
    assert tables.flip_intent("grp.L3") is None


def test_recover_file_rolls_back_surviving_intent(tables):
    seeded(tables)
    e = tables.begin_flip("grp.L3")
    tables.update_execution(1, "p", 0, "grp.L3", "grp.L4", 0, 100, e)
    assert tables.recover_file("grp.L3") == "rolled_back"
    assert tables.n_flips_rolled_back == 1
    assert tables.lookup_execution(1, "p", 0)[0] == "grp.L3"
    # Idempotent: nothing left to resolve.
    assert tables.recover_file("grp.L3") is None


def test_recover_file_rolls_committed_flip_forward(tables):
    seeded(tables)
    e = tables.begin_flip("grp.L3")
    tables.update_execution(1, "p", 0, "grp.L3", "grp.L4", 0, 100, e)
    tables.commit_flip("grp.L3", e)
    # Crash after the commit point, before the reap: the dead
    # predecessor version is still on disk.
    assert tables.dead_executions_in_file("grp.L3")
    assert tables.recover_file("grp.L3") == "rolled_forward"
    assert tables.n_flips_rolled_forward == 1
    assert tables.dead_executions_in_file("grp.L3") == []
    assert tables.lookup_execution(1, "p", 0)[0] == "grp.L4"
    # record_extents=False: recovery never records free extents (the
    # dead offsets may overlap a quiesced compaction's live layout).
    assert tables.db.execute("SELECT * FROM extent_table") == []


def test_begin_flip_epochs_globally_unique_across_files(tables):
    ea = tables.begin_flip("a.L3")
    eb = tables.begin_flip("b.L3")
    assert ea != eb
    # Rollback keyed on epoch alone must therefore only touch its own
    # flip's rows.
    tables.record_execution(1, "p", 0, "a.L3", 0, 10, valid_from=ea)
    tables.record_execution(1, "q", 0, "b.L3", 0, 10, valid_from=eb)
    tables.rollback_flip("a.L3", ea)
    assert tables.lookup_execution(1, "p", 0) is None
    assert tables.lookup_execution(1, "q", 0) is not None


# ---------------------------------------------------------------------------
# Leases: TTL, heartbeat, boot expiry, fencing
# ---------------------------------------------------------------------------


def test_live_lease_conflicts_and_released_lease_frees(tables):
    assert tables.try_acquire_lease("f", "a", now=0.0)
    assert not tables.try_acquire_lease("f", "b", now=1.0)
    tables.release_lease("f", "a")
    assert tables.try_acquire_lease("f", "b", now=2.0)


def test_release_lease_count_checked(tables):
    assert tables.try_acquire_lease("f", "a", now=0.0)
    tables.release_lease("f", "a")
    with pytest.raises(SDMStateError):
        tables.release_lease("f", "a")


def test_ttl_expiry_allows_steal_and_fences_old_holder(tables):
    assert tables.try_acquire_lease("f", "a", now=0.0, ttl=60.0)
    # Within the TTL the lease holds.
    assert not tables.try_acquire_lease("f", "b", now=59.0)
    # A full TTL after the last heartbeat it is stealable.
    assert tables.try_acquire_lease("f", "b", now=60.0)
    assert tables.n_leases_stolen == 1
    assert tables.lease_holder("f") == "b"
    # The presumed-dead holder is fenced: both its liveness refresh and
    # its release hit zero rows.
    with pytest.raises(SDMStateError):
        tables.heartbeat_lease("f", "a", 61.0)
    with pytest.raises(SDMStateError):
        tables.release_lease("f", "a")


def test_heartbeat_extends_lease(tables):
    assert tables.try_acquire_lease("f", "a", now=0.0, ttl=60.0)
    tables.heartbeat_lease("f", "a", 50.0)
    assert not tables.try_acquire_lease("f", "b", now=100.0)
    assert tables.try_acquire_lease("f", "b", now=110.0)


def test_boot_expiry_steals_without_clock(tables):
    seeded(tables)
    assert tables.try_acquire_lease("grp.L3", "a", now=0.0)
    t2 = reincarnate(tables)
    # No ``now`` passed: same-incarnation TTL expiry is off, but the
    # previous incarnation's holder is deterministically dead.
    assert t2.try_acquire_lease("grp.L3", "b")
    assert t2.n_leases_stolen == 1


def test_steal_mid_flip_rolls_back_and_fences_commit(tables):
    seeded(tables)
    assert tables.try_acquire_lease("grp.L3", "a", now=0.0, ttl=60.0)
    e = tables.begin_flip("grp.L3")
    tables.update_execution(1, "p", 0, "grp.L3", "grp.L4", 0, 100, e)
    # Holder goes silent; a thief acquires a full TTL later.  The steal
    # resolves the orphaned flip (rollback — never committed) first.
    assert tables.try_acquire_lease("grp.L3", "b", now=61.0)
    assert tables.n_flips_rolled_back == 1
    assert tables.lookup_execution(1, "p", 0)[0] == "grp.L3"
    # The original holder waking up cannot publish over the thief.
    with pytest.raises(SDMStateError):
        tables.commit_flip("grp.L3", e)


# ---------------------------------------------------------------------------
# Pins: ageing, fencing
# ---------------------------------------------------------------------------


def test_release_pin_count_checked(tables):
    pin = tables.create_pin("c", 0, now=0.0)
    tables.release_pin(pin)
    with pytest.raises(SDMStateError):
        tables.release_pin(pin)


def test_pins_expire_by_timeout_and_touch_refreshes(tables):
    pin = tables.create_pin("c", 0, now=0.0)
    assert tables.expired_pins(now=DEFAULT_PIN_TTL - 1.0) == []
    assert tables.expired_pins(now=DEFAULT_PIN_TTL) == [(pin, "c", 0)]
    tables.touch_pin(pin, DEFAULT_PIN_TTL)
    assert tables.expired_pins(now=2 * DEFAULT_PIN_TTL - 1.0) == []


def test_pins_expire_across_incarnations(tables):
    tables.create_pin("c", 0, now=0.0)
    t2 = reincarnate(tables)
    # Dead at now=0: boot generation, not clock, condemns it.
    assert t2.expired_pins(now=0.0) == [(1, "c", 0)]


def test_touch_of_reaped_pin_is_fenced(tables):
    pin = tables.create_pin("c", 0, now=0.0)
    tables.release_pin(pin)
    with pytest.raises(SDMStateError):
        tables.touch_pin(pin, 1.0)


# ---------------------------------------------------------------------------
# Per-row reap watermark
# ---------------------------------------------------------------------------


def flip_closing(tables, timestep, new_offset, dataset="p"):
    """Publish a flip repointing one timestep of grp.L3 to grp.L4."""
    e = tables.begin_flip("grp.L3")
    tables.update_execution(
        1, dataset, timestep, "grp.L3", "grp.L4", new_offset, 100, e
    )
    tables.commit_flip("grp.L3", e)
    return e


def test_pin_interval_reap_is_per_row(tables):
    tables.record_execution(1, "p", 0, "grp.L3", 0, 100)
    tables.record_execution(1, "p", 1, "grp.L3", 100, 100)
    e1 = flip_closing(tables, 0, 0)        # row 0 dead over [0, e1)
    pin = tables.create_pin("c", tables.current_epoch(), now=0.0)
    e2 = flip_closing(tables, 1, 100)      # row 1 dead over [0, e2)
    # The pin sits at e1, inside row 1's [0, e2) interval but outside
    # row 0's [0, e1) — row 0 reaps, row 1 survives.  The old global
    # min-pin floor would have kept both.
    assert not tables.reap_file("grp.L3")
    dead = tables.dead_executions_in_file("grp.L3")
    assert [(d[2], d[5], d[6]) for d in dead] == [(1, 0, e2)]
    # Watermark: everything below the surviving row's valid_from is
    # reaped; epoch history below it is pruned.
    assert tables.reap_watermark("grp.L3") == 0
    tables.release_pin(pin)
    assert tables.reap_file("grp.L3")
    assert tables.dead_executions_in_file("grp.L3") == []
    assert tables.reap_watermark("grp.L3") == e2


def test_full_reap_prunes_epoch_history(tables):
    tables.record_execution(1, "p", 0, "grp.L3", 0, 100)
    e1 = flip_closing(tables, 0, 0)
    assert tables.epochs_for_file("grp.L3") == [e1]
    assert tables.reap_file("grp.L3")
    assert tables.reap_watermark("grp.L3") == e1
    # Epochs strictly below the watermark are forgotten; the watermark
    # epoch itself survives as the file's published frontier.
    assert tables.epochs_for_file("grp.L3") == [e1]
    tables.record_execution(1, "q", 0, "grp.L3", 0, 100)
    e2 = flip_closing(tables, 0, 100, dataset="q")
    assert tables.reap_file("grp.L3")
    assert tables.epochs_for_file("grp.L3") == [e2]


def test_watermark_is_monotone(tables):
    tables.set_reap_watermark("f", 5)
    tables.set_reap_watermark("f", 3)
    assert tables.reap_watermark("f") == 5
    tables.set_reap_watermark("f", 7)
    assert tables.reap_watermark("f") == 7
