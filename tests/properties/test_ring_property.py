"""Property: the distributed ring algorithm equals the sequential rule for
arbitrary edge lists and partitioning vectors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fast_test
from repro.core.ring import EdgeChunk, ring_partition_index
from repro.mpi import mpirun


@st.composite
def edge_problem(draw):
    n_nodes = draw(st.integers(2, 20))
    n_edges = draw(st.integers(1, 40))
    nprocs = draw(st.integers(1, 5))
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    e1 = rng.integers(0, n_nodes, size=n_edges)
    e2 = rng.integers(0, n_nodes, size=n_edges)
    part = rng.integers(0, nprocs, size=n_nodes)
    return n_nodes, e1.astype(np.int64), e2.astype(np.int64), part.astype(np.int64), nprocs


@settings(max_examples=40, deadline=None)
@given(edge_problem())
def test_ring_equals_sequential_rule(problem):
    n_nodes, e1, e2, part, nprocs = problem

    def program(ctx):
        counts = np.full(ctx.size, len(e1) // ctx.size)
        counts[: len(e1) % ctx.size] += 1
        start = int(counts[: ctx.rank].sum())
        end = start + int(counts[ctx.rank])
        chunk = EdgeChunk(edge1=e1[start:end], edge2=e2[start:end],
                          gid_start=start)
        return ring_partition_index(ctx, part, chunk)

    job = mpirun(program, nprocs, machine=fast_test())
    for rank, local in enumerate(job.values):
        keep = (part[e1] == rank) | (part[e2] == rank)
        expect_gids = np.flatnonzero(keep)
        np.testing.assert_array_equal(local.edge_map, expect_gids)
        np.testing.assert_array_equal(local.edge1, e1[keep])
        np.testing.assert_array_equal(local.edge2, e2[keep])
        owned = np.flatnonzero(part == rank)
        if keep.any():
            expect_nodes = np.union1d(
                owned, np.unique(np.concatenate([e1[keep], e2[keep]]))
            )
        else:
            expect_nodes = owned
        np.testing.assert_array_equal(local.node_map, expect_nodes)
        # Every owned node's incident edges are all local (the completeness
        # property the ghost replication buys).
        incident = keep | ((part[e1] != rank) & (part[e2] != rank))
        assert incident.all()
