"""Property: every indexed query plan is indistinguishable from a full scan.

Databases with identical contents but different index configurations —
none (forced full scan), single-column hash, composite hash, ordered, and
all of them at once — must return byte-identical rows (same order, same
NULL semantics) for every generated SELECT/ORDER BY/LIMIT combination,
and end in identical states after every UPDATE/DELETE.  The indexed
database's structures must also stay consistent with a from-scratch
rebuild after each mutation, and must survive a ``dump()``/``loads()``
persistence round-trip.

NULL keys and duplicate keys are generated on purpose: the value domains
are tiny, so collisions and NULLs occur in most examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadb import Database

_INT = st.one_of(st.none(), st.integers(-5, 5))
_TXT = st.sampled_from(["x", "y", "z", None])

# (WHERE template, parameter kinds).  Equality and range conjuncts over
# indexed and unindexed columns, reversed operand order, BETWEEN sugar,
# OR/NOT/IS NULL subtrees, parenthesized nesting, and contradictory
# double-equality.
_TEMPLATES = [
    (None, ()),
    ("a = ?", ("int",)),
    ("b = ?", ("txt",)),
    ("? = a", ("int",)),
    ("a = ? AND b = ?", ("int", "txt")),
    ("a = ? AND b = ? AND c = ?", ("int", "txt", "int")),
    ("a = ? AND c >= ?", ("int", "int")),
    ("a = ? AND c > ? AND c <= ?", ("int", "int", "int")),
    ("c BETWEEN ? AND ?", ("int", "int")),
    ("c < ?", ("int",)),
    ("? < c", ("int",)),
    ("c >= ? AND c >= ?", ("int", "int")),
    ("a = ? AND a = ?", ("int", "int")),
    ("a = ? AND (b = ? OR c = ?)", ("int", "txt", "int")),
    ("a = ? OR b = ?", ("int", "txt")),
    ("NOT a = ?", ("int",)),
    ("a = ? AND b IS NULL", ("int",)),
    ("(a = ? AND b = ?) AND c != ?", ("int", "txt", "int")),
]

_ORDER_BYS = [
    "",
    "ORDER BY a",
    "ORDER BY c",
    "ORDER BY c DESC",
    "ORDER BY a, c",
    "ORDER BY c DESC, a DESC",
    "ORDER BY b, c",
    "ORDER BY b DESC",
]

_LIMITS = [None, 0, 1, 3]

# Named index configurations; "scan" is the reference plan.
_INDEX_SETS = {
    "hash": [("a", "hash"), ("b", "hash")],
    "composite": [(("a", "b"), "hash"), (("a", "b", "c"), "hash")],
    "ordered": [
        (("c",), "ordered"),
        (("a", "c"), "ordered"),
        (("b",), "ordered"),
    ],
    "mixed": [
        ("a", "hash"),
        (("a", "b", "c"), "hash"),
        (("c",), "ordered"),
        (("a", "c"), "ordered"),
        (("b", "c"), "ordered"),
    ],
}


@st.composite
def _case(draw):
    rows = draw(
        st.lists(st.tuples(_INT, _TXT, _INT), min_size=0, max_size=30)
    )
    template, kinds = draw(st.sampled_from(_TEMPLATES))
    params = tuple(
        draw(_INT) if kind == "int" else draw(_TXT) for kind in kinds
    )
    order_by = draw(st.sampled_from(_ORDER_BYS))
    limit = draw(st.sampled_from(_LIMITS))
    index_set = draw(st.sampled_from(sorted(_INDEX_SETS)))
    return rows, template, params, order_by, limit, index_set


def _build(rows, index_set=None):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    for row in rows:
        db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
    if index_set is not None:
        for columns, kind in _INDEX_SETS[index_set]:
            db.create_index("t", columns, kind)
    return db


def _check_index_integrity(db):
    table = db.tables["t"]
    for index in table.indexes.values():
        fresh = table.make_index(index.columns, index.kind)
        if index.kind == "hash":
            assert index.buckets == fresh.buckets
        else:
            assert index.entries == fresh.entries


@settings(max_examples=250, deadline=None)
@given(_case())
def test_every_index_plan_agrees_with_full_scan(case):
    rows, template, params, order_by, limit, index_set = case
    plain = _build(rows)
    fast = _build(rows, index_set)

    where = f"WHERE {template} " if template else ""
    tail = f"{where}{order_by}"
    if limit is not None:
        tail = f"{tail} LIMIT {limit}"

    select = f"SELECT * FROM t {tail}"
    assert fast.execute(select, params) == plain.execute(select, params)
    projected = f"SELECT a, c FROM t {tail}"
    assert fast.execute(projected, params) == plain.execute(projected, params)
    count = f"SELECT COUNT(*) FROM t {where}"
    assert fast.execute(count, params) == plain.execute(count, params)
    # MIN/MAX may come from ordered-index slice ends; NULL keys, empty
    # matches, and range bounds must agree with the materializing path.
    for fn in ("MIN", "MAX"):
        agg = f"SELECT {fn}(c) FROM t {where}"
        assert fast.execute(agg, params) == plain.execute(agg, params)

    # Persistence round-trips the declarations and the row contents.
    restored = Database.loads(fast.dump())
    assert restored.tables["t"].indexes.keys() == fast.tables["t"].indexes.keys()
    _check_index_integrity(restored)
    assert restored.execute(select, params) == plain.execute(select, params)

    # Mutations leave every engine in the same state, and the incremental
    # index maintenance matches a from-scratch rebuild.
    if template is not None:
        update = f"UPDATE t SET a = ? {where}"
        fast.execute(update, (3,) + params)
        plain.execute(update, (3,) + params)
        _check_index_integrity(fast)
        assert fast.execute("SELECT * FROM t") == plain.execute("SELECT * FROM t")

        delete = f"DELETE FROM t {where}"
        fast.execute(delete, params)
        plain.execute(delete, params)
        _check_index_integrity(fast)
        assert fast.execute("SELECT * FROM t") == plain.execute("SELECT * FROM t")

    # Delete-then-reinsert: compaction renumbered rowids; new rows must
    # land in the rebuilt structures.
    fast.execute("DELETE FROM t WHERE a = ?", (3,))
    plain.execute("DELETE FROM t WHERE a = ?", (3,))
    for row in [(3, "x", 0), (None, None, None), (3, "x", 0)]:
        fast.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        plain.execute("INSERT INTO t VALUES (?, ?, ?)", row)
    _check_index_integrity(fast)
    probe = "SELECT * FROM t WHERE a = ? AND b = ?"
    for needle in (3, 0, None):
        args = (needle, "x")
        assert fast.execute(probe, args) == plain.execute(probe, args)
    ordered = "SELECT * FROM t ORDER BY c DESC, a DESC LIMIT 4"
    assert fast.execute(ordered) == plain.execute(ordered)
