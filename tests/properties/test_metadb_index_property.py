"""Property: the indexed query path is indistinguishable from a full scan.

Two databases with identical contents — one with secondary hash indexes on
``a`` and ``b``, one without — must return identical rows (same order, same
NULL semantics) for every SELECT, and end in identical states after every
UPDATE/DELETE.  The indexed database's index structures must also stay
consistent with a from-scratch rebuild after each mutation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadb import Database

_INT = st.one_of(st.none(), st.integers(-5, 5))
_TXT = st.sampled_from(["x", "y", "z", None])

# (WHERE template, parameter kinds).  Equality conjuncts over indexed and
# unindexed columns, reversed operand order, OR/NOT/IS NULL subtrees,
# parenthesized nesting, and contradictory double-equality.
_TEMPLATES = [
    ("a = ?", ("int",)),
    ("b = ?", ("txt",)),
    ("? = a", ("int",)),
    ("a = ? AND b = ?", ("int", "txt")),
    ("a = ? AND c >= ?", ("int", "int")),
    ("a = ? AND a = ?", ("int", "int")),
    ("a = ? AND (b = ? OR c = ?)", ("int", "txt", "int")),
    ("a = ? OR b = ?", ("int", "txt")),
    ("NOT a = ?", ("int",)),
    ("a = ? AND b IS NULL", ("int",)),
    ("(a = ? AND b = ?) AND c != ?", ("int", "txt", "int")),
]


@st.composite
def _case(draw):
    rows = draw(
        st.lists(st.tuples(_INT, _TXT, _INT), min_size=0, max_size=30)
    )
    template, kinds = draw(st.sampled_from(_TEMPLATES))
    params = tuple(
        draw(_INT) if kind == "int" else draw(_TXT) for kind in kinds
    )
    return rows, template, params


def _build(rows, indexed):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    for row in rows:
        db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
    if indexed:
        db.create_index("t", "a")
        db.create_index("t", "b")
    return db


def _check_index_integrity(db):
    table = db.tables["t"]
    for column, buckets in table.indexes.items():
        assert buckets == table._build_index(column)


@settings(max_examples=250, deadline=None)
@given(_case())
def test_index_probe_agrees_with_full_scan(case):
    rows, template, params = case
    plain = _build(rows, indexed=False)
    fast = _build(rows, indexed=True)

    select = f"SELECT * FROM t WHERE {template}"
    assert fast.execute(select, params) == plain.execute(select, params)
    count = f"SELECT COUNT(*) FROM t WHERE {template}"
    assert fast.execute(count, params) == plain.execute(count, params)
    ordered = f"SELECT a, c FROM t WHERE {template} ORDER BY c, a DESC"
    assert fast.execute(ordered, params) == plain.execute(ordered, params)

    # Mutations leave both engines in the same state, and the incremental
    # index maintenance matches a from-scratch rebuild.
    update = f"UPDATE t SET a = ? WHERE {template}"
    fast.execute(update, (3,) + params)
    plain.execute(update, (3,) + params)
    _check_index_integrity(fast)
    assert fast.execute("SELECT * FROM t") == plain.execute("SELECT * FROM t")

    delete = f"DELETE FROM t WHERE {template}"
    fast.execute(delete, params)
    plain.execute(delete, params)
    _check_index_integrity(fast)
    assert fast.execute("SELECT * FROM t") == plain.execute("SELECT * FROM t")

    # Probes still agree after the rebuild that DELETE triggers.
    probe = "SELECT * FROM t WHERE a = ? AND b = ?"
    for needle in (3, 0, None):
        args = (needle, "x")
        assert fast.execute(probe, args) == plain.execute(probe, args)
