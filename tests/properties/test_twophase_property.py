"""Property: collective irregular write+read round-trips arbitrary disjoint
map arrays, and the resulting file equals the numpy reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fast_test
from repro.dtypes import FLOAT64, IndexedBlock
from repro.mpi import mpirun
from repro.mpiio import File, MODE_CREATE, MODE_RDONLY, MODE_WRONLY
from repro.pfs import FileSystem


@st.composite
def disjoint_maps(draw):
    nprocs = draw(st.integers(1, 5))
    n_global = draw(st.integers(nprocs, 60))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, nprocs, size=n_global)
    maps = [np.flatnonzero(owner == r).astype(np.int64) for r in range(nprocs)]
    return n_global, maps


@settings(max_examples=30, deadline=None)
@given(disjoint_maps())
def test_collective_write_read_roundtrip_property(case):
    n_global, maps = case
    nprocs = len(maps)

    def services(sim, machine):
        return {"fs": FileSystem(sim, machine)}

    def program(ctx):
        fs = ctx.service("fs")
        mine = maps[ctx.rank]
        f = File.open(ctx.comm, fs, "prop.dat", MODE_CREATE | MODE_WRONLY)
        if len(mine):
            f.set_view(etype=FLOAT64,
                       filetype=IndexedBlock(1, mine, FLOAT64))
        f.write_at_all(0, mine * 2.0 + 0.25)
        f.close()
        f = File.open(ctx.comm, fs, "prop.dat", MODE_RDONLY)
        if len(mine):
            f.set_view(etype=FLOAT64,
                       filetype=IndexedBlock(1, mine, FLOAT64))
        out = np.empty(len(mine), dtype=np.float64)
        f.read_at_all(0, out)
        f.close()
        return out

    job = mpirun(program, nprocs, machine=fast_test(), services=services)
    # Per-rank read-back equals what it wrote.
    for r, out in enumerate(job.values):
        np.testing.assert_array_equal(out, maps[r] * 2.0 + 0.25)
    # The file as a whole equals the sequential reference (unwritten
    # positions -- there are none, since owners partition the array).
    fs = job.services["fs"]
    covered = np.concatenate(maps) if any(len(m) for m in maps) else np.array([])
    if len(covered):
        whole = fs.lookup("prop.dat").store.read(
            0, (int(covered.max()) + 1) * 8
        ).view(np.float64)
        for m in maps:
            np.testing.assert_array_equal(whole[m], m * 2.0 + 0.25)
