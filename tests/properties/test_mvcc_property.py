"""Property: MVCC snapshots isolate pinned readers from metadata flips.

A ``snapshot=True`` SDM pins the metadata epoch current at initialization.
For random irregular partitions at 1-4 ranks and every organization level,
its reads must be byte-identical before, *interleaved with*, and after
background reorganization and compaction of the very files it is reading —
with no ``drain_maintenance`` and no quiescence contract.  The flips
publish new epochs; the pinned reader keeps resolving (and reading) the
row versions and byte regions of its snapshot.

Overlap is fail-fast, not lost-update: a second writer flipping a file
whose lease is held raises :class:`~repro.errors.SDMLeaseConflict` on
every rank, and the failed flip publishes nothing.

And nothing leaks: once the last pin releases (``finalize``) and a final
compaction pass runs, every file is packed to its live bytes — no
superseded row versions, no dead extents, no stale epochs, no leases, no
pins.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CHUNKED
from repro.dtypes import DOUBLE
from repro.errors import SDMLeaseConflict
from repro.metadb.schema import OPEN_EPOCH, SDMTables
from repro.mpi import mpirun


@st.composite
def partitions(draw):
    """(global size, per-rank unsorted maps) with every gid covered."""
    nprocs = draw(st.integers(1, 4))
    n = draw(st.integers(nprocs * 2, 24))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    cuts = np.sort(
        rng.choice(np.arange(1, n), nprocs - 1, replace=False)
    ) if nprocs > 1 else np.array([], dtype=int)
    maps = [p.astype(np.int64) for p in np.split(perm, cuts)]
    return n, maps


def _read_all(sdm, handle, mine, timesteps):
    out = []
    for t in timesteps:
        back = np.empty(len(mine))
        sdm.read(handle, "d", t, back)
        out.append(back.copy())
    return out


def run_pinned_reader_once(level, n, maps):
    """Pinned reader interleaved with background reorganize + compact of
    the same files; returns its reads from the three phases plus the
    post-release leak audit."""
    nprocs = len(maps)

    def program(ctx):
        sdm = SDM(ctx, "prop", organization=level, storage_order=CHUNKED,
                  reorganize_mode="background", snapshot=True)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        for t in range(2):
            sdm.write(handle, "d", t, mine * 1.5 + 0.25 + t)
        pre = _read_all(sdm, handle, mine, range(2))
        # Flip the reader's own files out from under it: reorganize t0 to
        # canonical order, then compact the chunked files' dead regions —
        # all on the background workers, no drain before the next reads.
        sdm.reorganize(handle, "d", 0)
        fnames = sorted({
            sdm.checkpoint_file(handle, "d", t, storage_order=CHUNKED)
            for t in range(2)
        })
        for fname in fnames:
            sdm.compact(fname)
        mid = _read_all(sdm, handle, mine, range(2))  # workers in flight
        sdm.drain_maintenance()  # every flip published (new epochs live)
        flipped = sdm.tables.current_epoch(proc=ctx.proc) if ctx.rank == 0 \
            else None
        flipped = ctx.comm.bcast(flipped, root=0)
        post = _read_all(sdm, handle, mine, range(2))  # pin still old
        sdm.finalize(handle)  # releases the last pin, reaps drained rows
        # With no pins left, a sync compaction pass packs in place.
        sdm2 = SDM(ctx, "prop2", organization=level, storage_order=CHUNKED)
        for fname in fnames:
            sdm2.compact(fname, mode="sync")
        sdm2.finalize()
        return pre, mid, post, fnames, flipped

    job = mpirun(program, nprocs, machine=fast_test(),
                 services=sdm_services())
    tables = SDMTables(job.services["db"])
    fs = job.services["fs"]
    reads = [(pre, mid, post) for pre, mid, post, _, _ in job.values]
    fnames = job.values[0][3]
    flipped = job.values[0][4]
    audit = {
        "flipped": flipped,
        "leases": tables.lease_count(),
        "pins": tables.pin_count(),
        "epochs": {f: tables.epochs_for_file(f) for f in fnames},
        "free": {f: tables.free_bytes_in(f) for f in fnames},
        "sizes": {f: fs.lookup(f).size if fs.exists(f) else 0
                  for f in fnames},
        "live": {f: sum(r[4] for r in tables.executions_in_file(f))
                 for f in fnames},
        "open_versions": {
            f: len(tables.db.execute(
                "SELECT runid FROM execution_table "
                "WHERE file_name = ? AND valid_to != ?",
                (f, OPEN_EPOCH),
            ))
            for f in fnames
        },
    }
    return reads, audit


@settings(max_examples=6, deadline=None)
@given(partitions(), st.sampled_from(list(Organization)))
def test_pinned_reader_is_isolated_from_background_flips(partition, level):
    """Reads pinned on epoch N stay byte-identical while reorganization
    and compaction publish N+1, N+2, ... of the same files — before the
    flips, racing the flips, and after every flip has landed."""
    n, maps = partition
    reads, audit = run_pinned_reader_once(level, n, maps)
    for rank, (pre, mid, post) in enumerate(reads):
        for t in range(2):
            expected = maps[rank] * 1.5 + 0.25 + t
            for phase, got in (("pre", pre), ("mid", mid), ("post", post)):
                np.testing.assert_array_equal(
                    got[t], expected,
                    err_msg=f"pinned read t{t}, rank {rank}, {phase}-flip",
                )
    # The flips really published: the reader was isolated, not the flips
    # suppressed.
    assert audit["flipped"] > 0, audit
    # Zero leaks once the last pin released: no lease, no pin, at most
    # the file's newest epoch on record, no superseded row versions, and
    # every file packed to its live bytes.
    assert audit["leases"] == 0, audit
    assert audit["pins"] == 0, audit
    for fname in audit["epochs"]:
        assert len(audit["epochs"][fname]) <= 1, (fname, audit)
        assert audit["open_versions"][fname] == 0, (fname, audit)
        assert audit["free"][fname] == 0, (fname, audit)
        assert audit["sizes"][fname] == audit["live"][fname], (fname, audit)


def run_lease_conflict_once(n, maps):
    """A rival lease held across a sync flip: every rank must raise
    SDMLeaseConflict, the flip must publish nothing, and the released
    lease must let the same flip succeed."""
    nprocs = len(maps)

    def program(ctx):
        sdm = SDM(ctx, "prop", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.5 + 0.25)
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        if ctx.rank == 0:
            assert sdm.tables.try_acquire_lease(
                fname, "rival-writer", proc=ctx.proc
            )
        ctx.comm.barrier()
        conflicts = 0
        try:
            sdm.reorganize(handle, "d", 0)
        except SDMLeaseConflict:
            conflicts += 1
        try:
            sdm.compact(fname, mode="sync")
        except SDMLeaseConflict:
            conflicts += 1
        epoch_after_conflicts = None
        if ctx.rank == 0:
            epoch_after_conflicts = sdm.tables.current_epoch(proc=ctx.proc)
            sdm.tables.release_lease(fname, "rival-writer", proc=ctx.proc)
        epoch_after_conflicts = ctx.comm.bcast(epoch_after_conflicts, root=0)
        ctx.comm.barrier()
        sdm.reorganize(handle, "d", 0)  # lease free: same flip now lands
        back = np.empty(len(mine))
        sdm.read(handle, "d", 0, back)
        sdm.finalize(handle)
        return conflicts, epoch_after_conflicts, back

    job = mpirun(program, nprocs, machine=fast_test(),
                 services=sdm_services())
    tables = SDMTables(job.services["db"])
    return job.values, tables.lease_count()


@settings(max_examples=6, deadline=None)
@given(partitions())
def test_overlapping_flips_conflict_instead_of_losing_updates(partition):
    n, maps = partition
    values, leases = run_lease_conflict_once(n, maps)
    for rank, (conflicts, epoch_after_conflicts, back) in enumerate(values):
        # Both overlapping flips failed fast, on every rank symmetrically.
        assert conflicts == 2, (rank, conflicts)
        # The failed flips published nothing.
        assert epoch_after_conflicts == 0, epoch_after_conflicts
        np.testing.assert_array_equal(
            back, maps[rank] * 1.5 + 0.25,
            err_msg=f"read after recovered flip, rank {rank}",
        )
    assert leases == 0


def test_zero_row_updates_raise(tmp_path):
    """The silent-lost-update bug class at its root: repointing or
    rebasing an execution row that is not there must raise, not no-op."""
    from repro.errors import SDMStateError
    from repro.metadb.engine import Database

    tables = SDMTables(Database())
    tables.create_all()
    with pytest.raises(SDMStateError):
        tables.update_execution(
            1, "d", 0, "old.chunked", "new.canonical", 0, 8, epoch=1
        )
    tables.record_execution(1, "d", 0, "a.chunked", 0, 8)
    with pytest.raises(SDMStateError):
        # Right key, wrong predecessor version: the close must miss.
        tables.update_execution_offsets(
            [(0, 8, 1, "d", 0, 77)], "a.chunked", epoch=1
        )


# ---------------------------------------------------------------------------
# First-fit extent reuse under churn
# ---------------------------------------------------------------------------

@st.composite
def churn_workloads(draw):
    """A write/flip/release/write churn: some timesteps flipped to
    canonical while a catalog pin holds their chunked rows alive, the
    release-time reap turning them into dead extents, then more writes
    that may recycle those extents first-fit.  ``shared=True`` keeps one
    view for every timestep, so flipped regions strand index blocks still
    referenced by surviving timesteps — the bytes first-fit must never
    hand out."""
    nprocs = draw(st.integers(1, 4))
    n = draw(st.integers(max(4, nprocs * 2), 24))
    seed = draw(st.integers(0, 2**20))
    t_first = draw(st.integers(2, 4))
    flips = draw(st.lists(st.booleans(), min_size=t_first, max_size=t_first))
    shared = draw(st.booleans())
    t_more = draw(st.integers(1, 3))
    rng = np.random.default_rng(seed)

    def make_maps(r):
        perm = r.permutation(n)
        cuts = np.sort(
            r.choice(np.arange(1, n), nprocs - 1, replace=False)
        ) if nprocs > 1 else np.array([], dtype=int)
        return [p.astype(np.int64) for p in np.split(perm, cuts)]

    total = t_first + t_more
    if shared:
        maps = [make_maps(rng)] * total
    else:
        maps = [make_maps(rng) for _ in range(total)]
    return n, maps, flips, t_first


@settings(max_examples=8, deadline=None)
@given(churn_workloads(), st.sampled_from(list(Organization)))
def test_first_fit_reuse_never_overlaps_live_or_pinned_bytes(
    workload, level
):
    """Safety of extent recycling: across random churn every read — the
    pinned catalog's, the writer's, and the catalog's post-release reads
    at current visibility — stays byte-exact, and no two execution-row
    versions visible at a common epoch ever occupy overlapping bytes of
    one file (a first-fit placement over live or pinned bytes would
    violate one of the two)."""
    from repro.core.catalog import SDMCatalog

    n, maps, flips, t_first = workload
    nprocs = len(maps[0])
    total = len(maps)

    def program(ctx):
        sdm = SDM(ctx, "prop", organization=level, storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        for t in range(t_first):
            m = maps[t][ctx.rank]
            sdm.data_view(handle, "d", m)
            sdm.write(handle, "d", t, m * 1.5 + t)
        catalog = SDMCatalog.attach(ctx)     # pins the pre-flip epoch
        for t, flip in enumerate(flips):
            if flip:
                sdm.reorganize(handle, "d", t)  # pin defers the reap
        lo = n * ctx.rank // ctx.size
        hi = n * (ctx.rank + 1) // ctx.size
        share = np.arange(lo, hi, dtype=np.int64)
        pinned = [
            catalog.read_slice(1, "d", t, share) for t in range(t_first)
        ]
        catalog.release()  # reap: flipped regions become dead extents
        for t in range(t_first, total):
            m = maps[t][ctx.rank]
            sdm.data_view(handle, "d", m)
            sdm.write(handle, "d", t, m * 1.5 + t)  # may recycle extents
        mine = []
        for t in range(total):
            m = maps[t][ctx.rank]
            sdm.data_view(handle, "d", m)
            back = np.empty(len(m))
            sdm.read(handle, "d", t, back)
            mine.append(back.copy())
        current = [
            catalog.read_slice(1, "d", t, share) for t in range(total)
        ]
        sdm.finalize(handle)
        return share, pinned, mine, current

    job = mpirun(program, nprocs, machine=fast_test(),
                 services=sdm_services())
    for rank, (share, pinned, mine, current) in enumerate(job.values):
        for t in range(total):
            if t < t_first:
                np.testing.assert_array_equal(
                    pinned[t], share * 1.5 + t,
                    err_msg=f"pinned read t{t}, rank {rank}",
                )
            np.testing.assert_array_equal(
                mine[t], maps[t][rank] * 1.5 + t,
                err_msg=f"writer read t{t}, rank {rank}",
            )
            np.testing.assert_array_equal(
                current[t], share * 1.5 + t,
                err_msg=f"current-epoch read t{t}, rank {rank}",
            )
    # No two row versions visible at a common epoch occupy overlapping
    # bytes of one file — live rows, pinned-epoch rows, recycled rows.
    tables = SDMTables(job.services["db"])
    rows = tables.db.execute(
        "SELECT file_name, file_offset, nbytes, valid_from, valid_to "
        "FROM execution_table"
    )
    by_file = {}
    for fname, off, nbytes, vf, vt in rows:
        by_file.setdefault(fname, []).append(
            (int(off), int(off) + int(nbytes), int(vf), int(vt))
        )
    for fname, regions in by_file.items():
        for i, (lo1, hi1, vf1, vt1) in enumerate(regions):
            for lo2, hi2, vf2, vt2 in regions[i + 1:]:
                covisible = max(vf1, vf2) < min(vt1, vt2)
                disjoint = hi1 <= lo2 or hi2 <= lo1
                assert not covisible or disjoint, (fname, regions)
