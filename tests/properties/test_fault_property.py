"""Crash-at-every-point property harness (the robustness tentpole).

For each workload kind (write / reorganize / compact), an observe-only
:class:`FaultPlan` run enumerates the complete crash schedule — every
``(process, fault point, nth hit)`` the workload passes through.  Each
entry is then replayed as a crashing plan: the job dies exactly there,
its services snapshot crosses to a second job the way the history-file
experiments carry state between runs, and recovery runs either *eagerly*
(the maintenance service's attach sweep) or *lazily* (maintenance
omitted; the stale lease is found, recovered, and stolen on the next
``acquire_file_lease``).  After recovery, whatever the crash interrupted
must have resolved exactly one way:

* no stuck leases and no surviving flip intents;
* every visible dataset instance reads back byte-identical — no
  half-visible flips, no lost epochs;
* every instance durably recorded before the crash is still visible;
* no pin leaks survive undetected (eager recovery reaps them outright);
* recorded free extents never overlap live data regions.

``FAULT_SEED`` rotates which ``(nranks, organization level)`` each
workload runs at, so repeated runs sweep the 1–4 rank × level matrix
while any single run stays fast and byte-for-byte reproducible.
"""

import os

import numpy as np
import pytest

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.core.catalog import SDMCatalog
from repro.core.datapath import acquire_file_lease, release_file_lease
from repro.core.layout import CHUNKED
from repro.metadb.schema import SDMTables
from repro.dtypes import DOUBLE
from repro.mpi import mpirun
from repro.simt import FaultPlan

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))
GLOBAL = 24
TIMESTEPS = 3
KINDS = ["write", "reorganize", "compact"]
GRID = [
    (1, Organization.LEVEL_1),
    (2, Organization.LEVEL_2),
    (3, Organization.LEVEL_3),
    (4, Organization.LEVEL_2),
]


def combo_for(kind, recovery):
    """Deterministic (nranks, level) pick, rotated by FAULT_SEED so the
    full grid is swept across seeds while one run stays small."""
    idx = KINDS.index(kind) * 2 + (recovery == "steal")
    return GRID[(FAULT_SEED + idx) % len(GRID)]


def maps_for(nranks, n=GLOBAL):
    rng = np.random.default_rng(5)
    perm = rng.permutation(n)
    if nranks == 1:
        return [perm.astype(np.int64)]
    cuts = np.sort(rng.choice(np.arange(1, n), nranks - 1, replace=False))
    return [p.astype(np.int64) for p in np.split(perm, cuts)]


def workload(kind, maps, level):
    """Chunked writes, then the kind's flip(s), then a read-back."""

    def program(ctx):
        sdm = SDM(ctx, "fp", organization=level, storage_order=CHUNKED,
                  reorganize_mode="sync", snapshot=True)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE,
                                 global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        for t in range(TIMESTEPS):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        if kind == "reorganize":
            sdm.reorganize(handle, "d", 0)
        elif kind == "compact":
            fname = sdm.checkpoint_file(handle, "d", 0,
                                        storage_order=CHUNKED)
            sdm.reorganize(handle, "d", 0)  # leaves dead extents behind
            sdm.compact(fname, mode="background")
            sdm.drain_maintenance()
        back = np.empty(len(mine))
        sdm.read(handle, "d", TIMESTEPS - 1, back)
        sdm.finalize(handle)
        return True

    return program


def run_workload(kind, maps, level, nranks, fault_plan):
    return mpirun(workload(kind, maps, level), nranks,
                  machine=fast_test(), services=sdm_services(),
                  fault_plan=fault_plan)


def read_all(ctx):
    """Catalog-read every visible timestep of the producing run."""
    cat = SDMCatalog.attach(ctx)
    out = {t: cat.read_global(1, "d", t) for t in cat.timesteps(1, "d")}
    cat.release()
    return out


def attach_recovery(ctx):
    """Eager path: a fresh SDM's maintenance attach sweeps stale boot
    generations (leases, intents, pins) and adopts the orphaned queue."""
    sdm = SDM(ctx, "recover")
    sdm.drain_maintenance()
    out = read_all(ctx)
    sdm.finalize()
    return out


def steal_recovery(ctx):
    """Lazy path: no maintenance service at all — the first acquirer of
    each abandoned file finds the dead holder's lease, resolves the
    interrupted flip, and steals the row."""
    tables = SDMTables(ctx.service("db"))
    tables.declare_indexes()
    files = None
    if ctx.rank == 0:
        files = sorted(
            {f for f, _h, _b in tables.all_leases(proc=ctx.proc)}
            | set(tables.files_with_flip_intents(proc=ctx.proc))
        )
    files = ctx.comm.bcast(files, root=0)
    for fname in files:
        acquire_file_lease(ctx.comm, tables, fname, "thief", proc=ctx.proc)
        if ctx.rank == 0:
            # Covers the orphan-intent corner (an intent whose lease row
            # is already gone): stealing recovers, a fresh acquire does
            # not — resolve explicitly under the lease we now hold.
            tables.recover_file(fname, proc=ctx.proc)
        release_file_lease(ctx.comm, tables, fname, "thief", proc=ctx.proc)
    return read_all(ctx)


def check_recovered_state(tables, recovery):
    """The harness's core invariants over the post-recovery database."""
    assert tables.all_leases() == [], "stuck leases survived recovery"
    assert tables.files_with_flip_intents() == [], "unresolved flip intent"
    pins = tables.all_pins()
    if recovery == "attach":
        assert pins == [], f"leaked pins survived attach recovery: {pins}"
    else:
        # The lazy path reaps nothing by itself, but every survivor must
        # be *detectable* — stamped with a dead boot generation.
        expired = set(tables.expired_pins(now=0.0))
        assert set(pins) <= expired, f"undetectable pin leak: {pins}"
    extents = tables.db.execute(
        "SELECT file_name, file_offset, nbytes FROM extent_table"
    )
    for fname, off, n in extents:
        for _r, _d, t, loff, ln in tables.executions_in_file(fname):
            assert not (off < loff + ln and loff < off + int(n)), (
                f"free extent [{off}, {off + int(n)}) overlaps live "
                f"timestep {t} at [{loff}, {loff + ln}) in {fname!r}"
            )


@pytest.mark.parametrize("recovery", ["attach", "steal"])
@pytest.mark.parametrize("kind", KINDS)
def test_crash_at_every_fault_point_recovers(kind, recovery):
    nranks, level = combo_for(kind, recovery)
    maps = maps_for(nranks)

    clean = run_workload(kind, maps, level, nranks, FaultPlan.observe())
    assert clean.crashed == []
    schedule = list(dict.fromkeys(clean.fault_log))
    assert schedule, "workload registered no fault points"
    if kind in ("reorganize", "compact"):
        assert any(p == "flip:intent" for _v, p, _n in schedule)
        assert any(p == "flip:published" for _v, p, _n in schedule)

    for victim, point, nth in schedule:
        label = f"{kind}/{recovery}@{victim}[{point}#{nth}]"
        crashed = run_workload(
            kind, maps, level, nranks,
            FaultPlan(point, victim=victim, occurrence=nth),
        )
        assert victim in crashed.crashed, label
        # Writes rank 0 durably recorded before dying stay visible.
        required = set(range(sum(
            1 for v, p, _n in crashed.fault_log
            if v == victim and p == "write:recorded"
        ) if victim == "rank0" else TIMESTEPS))

        snap = snapshot_services(crashed)
        program = attach_recovery if recovery == "attach" else steal_recovery
        job = mpirun(
            program, nranks, machine=fast_test(),
            services=sdm_services(
                seed_from=snap, maintenance=recovery == "attach"
            ),
        )
        tables = SDMTables(job.services["db"])
        check_recovered_state(tables, recovery)
        visible = job.values[0]
        assert required <= set(visible), (
            f"{label}: recorded timesteps lost "
            f"(visible {sorted(visible)}, required {sorted(required)})"
        )
        for t, data in visible.items():
            np.testing.assert_allclose(
                data, np.arange(GLOBAL) * 1.0 + t, err_msg=label
            )
