"""Property: file views select exactly the mapped file bytes, in order."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import FLOAT64, IndexedBlock, Vector
from repro.mpiio import FileView


@st.composite
def map_and_window(draw):
    n = draw(st.integers(1, 50))
    universe = draw(st.integers(n, 200))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    disp = np.sort(rng.choice(universe, size=n, replace=False)).astype(np.int64)
    start = draw(st.integers(0, n - 1))
    count = draw(st.integers(1, n - start))
    return disp, start, count


@settings(max_examples=100, deadline=None)
@given(map_and_window())
def test_indexed_view_selects_mapped_elements(case):
    disp, start, count = case
    view = FileView(etype=FLOAT64, filetype=IndexedBlock(1, disp, FLOAT64))
    off, ln = view.runs_for(start * 8, count * 8)
    # Expand runs to element indices in the file.
    selected = []
    for o, l in zip(off.tolist(), ln.tolist()):
        assert o % 8 == 0 and l % 8 == 0
        selected.extend(range(o // 8, (o + l) // 8))
    np.testing.assert_array_equal(selected, disp[start : start + count])


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1, 16),   # nprocs
    st.integers(0, 15),   # rank
    st.integers(1, 40),   # elements to access
    st.integers(0, 30),   # starting element
)
def test_round_robin_view_arithmetic(nprocs, rank, count, start):
    """The rank-strided vector view maps element k to file element
    k*nprocs + rank — checked for arbitrary windows."""
    if rank >= nprocs:
        rank = rank % nprocs
    ft = Vector(count=1, blocklength=1, stride=1, base=FLOAT64).with_extent(
        8 * nprocs
    )
    view = FileView(disp=8 * rank, etype=FLOAT64, filetype=ft)
    off, ln = view.runs_for(start * 8, count * 8)
    selected = []
    for o, l in zip(off.tolist(), ln.tolist()):
        selected.extend(range(o // 8, (o + l) // 8))
    expect = [(start + k) * nprocs + rank for k in range(count)]
    np.testing.assert_array_equal(selected, expect)


@settings(max_examples=100, deadline=None)
@given(map_and_window())
def test_view_windows_compose(case):
    """Reading [a, b) then [b, c) covers the same bytes as [a, c)."""
    disp, start, count = case
    if count < 2:
        return
    view = FileView(etype=FLOAT64, filetype=IndexedBlock(1, disp, FLOAT64))
    mid = count // 2
    o1, l1 = view.runs_for(start * 8, mid * 8)
    o2, l2 = view.runs_for((start + mid) * 8, (count - mid) * 8)
    o_all, l_all = view.runs_for(start * 8, count * 8)

    def expand(off, ln):
        out = []
        for o, l in zip(off.tolist(), ln.tolist()):
            out.extend(range(o, o + l))
        return out

    assert expand(o1, l1) + expand(o2, l2) == expand(o_all, l_all)
