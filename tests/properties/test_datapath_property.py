"""Property: storage orders are observationally equivalent on reads.

For random irregular partitions (unsorted rank maps, optional ghost
overlaps with agreeing values), random rank counts, and every file
organization level, ``SDM.read`` must return identical arrays whether the
instance was written canonically, chunked, or chunked and then
``reorganize()``d — and a whole-array read of the file must see global
element order in the canonical and reorganized cases.

The read path's run coalescer is part of the property surface: every
example also runs under a drawn ``coalesce_gap`` hint (0 / small / huge /
adaptive), so per-element, adjacent-merged, maximally gap-bridged, and
self-tuned reads must all return the same bytes.  The adaptive dimension
is the policy tier's read-equivalence guarantee: a derived gap only ever
changes which hole bytes are read-and-discarded, never the result.

The maintenance dimension extends the same property behind the service
tier: writing chunked, *enqueueing* reorganization and compaction on the
background workers, draining, and reading must also be byte-identical —
with the compacted file's recorded free bytes at zero.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CANONICAL, CHUNKED
from repro.dtypes import DOUBLE
from repro.metadb.schema import SDMTables
from repro.mpi import mpirun
from repro.mpiio.runs import ADAPTIVE_GAP


@st.composite
def partitions(draw):
    """(global size, per-rank unsorted maps) with every gid covered, plus
    optional cross-rank ghost duplicates."""
    nprocs = draw(st.integers(1, 4))
    n = draw(st.integers(nprocs * 2, 24))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    cuts = np.sort(
        rng.choice(np.arange(1, n), nprocs - 1, replace=False)
    ) if nprocs > 1 else np.array([], dtype=int)
    maps = [p.astype(np.int64) for p in np.split(perm, cuts)]
    if draw(st.booleans()) and nprocs > 1:
        # Ghosts: each rank also writes one gid owned by the next rank.
        maps = [
            np.concatenate([m, maps[(r + 1) % nprocs][:1]])
            for r, m in enumerate(maps)
        ]
    return n, maps


def run_once(order, level, n, maps, reorganize, io_hints=None):
    nprocs = len(maps)

    def program(ctx):
        sdm = SDM(ctx, "prop", organization=level, storage_order=order,
                  io_hints=io_hints)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.5 + 0.25)  # value = f(gid): ghosts agree
        if reorganize:
            sdm.reorganize(handle, "d", 0)
        back = np.empty(len(mine))
        sdm.read(handle, "d", 0, back)
        # A second, foreign view: this rank's even share of the globe.
        lo = n * ctx.rank // ctx.size
        hi = n * (ctx.rank + 1) // ctx.size
        share = np.arange(lo, hi, dtype=np.int64)
        sdm.data_view(handle, "d", share)
        whole = np.empty(len(share))
        sdm.read(handle, "d", 0, whole)
        sdm.finalize(handle)
        return back, whole

    job = mpirun(program, nprocs, machine=fast_test(), services=sdm_services())
    backs = [b for b, _ in job.values]
    whole = np.concatenate([w for _, w in job.values])
    return backs, whole


@settings(max_examples=12, deadline=None)
@given(
    partitions(),
    st.sampled_from(list(Organization)),
    st.sampled_from([0, 16, 1 << 30, ADAPTIVE_GAP]),
)
def test_read_equivalence_across_storage_orders(partition, level, gap):
    """Byte-identical reads across every storage order — at every
    coalescing aggressiveness: gap 0 (merge only adjacent runs), a small
    gap (bridge element-sized holes), a huge gap (one covering run per
    read, maximal read-and-discard), and the adaptive sentinel (each
    read derives its own gap from its hole distribution)."""
    n, maps = partition
    hints = {"coalesce_gap": gap}
    expected_global = np.arange(n) * 1.5 + 0.25
    results = {
        variant: run_once(order, level, n, maps, reorganize, io_hints=hints)
        for variant, (order, reorganize) in {
            "canonical": (CANONICAL, False),
            "chunked": (CHUNKED, False),
            "reorganized": (CHUNKED, True),
        }.items()
    }
    for variant, (backs, whole) in results.items():
        for rank, back in enumerate(backs):
            np.testing.assert_allclose(
                back, maps[rank] * 1.5 + 0.25,
                err_msg=f"{variant} read-after-write, rank {rank}, gap {gap}",
            )
        np.testing.assert_allclose(
            whole, expected_global,
            err_msg=f"{variant} global read, gap {gap}",
        )


def run_maintenance_once(level, n, maps):
    """Two chunked timesteps; t0 reorganized and the file compacted on
    the background workers; reads after the drain."""
    nprocs = len(maps)

    def program(ctx):
        sdm = SDM(ctx, "prop", organization=level, storage_order=CHUNKED,
                  reorganize_mode="background")
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        for t in range(2):
            sdm.write(handle, "d", t, mine * 1.5 + 0.25 + t)
        sdm.reorganize(handle, "d", 0)  # enqueued
        fnames = sorted({
            sdm.checkpoint_file(handle, "d", t, storage_order=CHUNKED)
            for t in range(2)
        })
        for fname in fnames:  # queued behind the reorganize
            sdm.compact(fname)
        sdm.drain_maintenance()
        backs = []
        for t in range(2):
            back = np.empty(len(mine))
            sdm.read(handle, "d", t, back)
            backs.append(back)
        # A foreign view crossing every chunk of the compacted file.
        lo = n * ctx.rank // ctx.size
        hi = n * (ctx.rank + 1) // ctx.size
        share = np.arange(lo, hi, dtype=np.int64)
        sdm.data_view(handle, "d", share)
        whole = np.empty(len(share))
        sdm.read(handle, "d", 1, whole)
        sdm.finalize(handle)
        return backs, whole, fnames

    job = mpirun(program, nprocs, machine=fast_test(), services=sdm_services())
    tables = SDMTables(job.services["db"])
    fs = job.services["fs"]
    backs = [b for b, _, _ in job.values]
    whole = np.concatenate([w for _, w, _ in job.values])
    fnames = job.values[0][2]
    free = {f: tables.free_bytes_in(f) for f in fnames}
    sizes = {f: fs.lookup(f).size if fs.exists(f) else 0 for f in fnames}
    live = {
        f: sum(r[4] for r in tables.executions_in_file(f)) for f in fnames
    }
    return backs, whole, free, sizes, live


@settings(max_examples=8, deadline=None)
@given(partitions(), st.sampled_from(list(Organization)))
def test_background_maintenance_preserves_reads_and_zeroes_extents(
    partition, level
):
    n, maps = partition
    backs, whole, free, sizes, live = run_maintenance_once(level, n, maps)
    for t in range(2):
        for rank, back in enumerate(b[t] for b in backs):
            np.testing.assert_allclose(
                back, maps[rank] * 1.5 + 0.25 + t,
                err_msg=f"maintenance read t{t}, rank {rank}",
            )
    np.testing.assert_allclose(
        whole, np.arange(n) * 1.5 + 1.25, err_msg="maintenance global read"
    )
    for fname in free:
        assert free[fname] == 0, (fname, free)
        assert sizes[fname] == live[fname], (fname, sizes, live)


# ---------------------------------------------------------------------------
# Collective index resolution
# ---------------------------------------------------------------------------

@st.composite
def chunk_mixes(draw):
    """(global size, per-rank maps) with a drawn mix of chunk kinds:
    contiguous blocks and strided progressions (arithmetic chunks, no
    index block on disk) and random subsets (indexed chunks) — the three
    on-disk shapes collective resolution must agree with local
    resolution on."""
    nprocs = draw(st.integers(1, 8))
    n = draw(st.integers(8, 48))
    seed = draw(st.integers(0, 2**20))
    kinds = draw(st.lists(
        st.sampled_from(["block", "stride", "irregular"]),
        min_size=nprocs, max_size=nprocs,
    ))
    rng = np.random.default_rng(seed)
    maps = []
    for kind in kinds:
        count = int(rng.integers(2, max(3, n // 2)))
        if kind == "block":
            start = int(rng.integers(0, n - count + 1))
            m = np.arange(start, start + count)
        elif kind == "stride":
            step = int(rng.integers(2, 4))
            count = min(count, 1 + (n - 1) // step)
            start = int(rng.integers(0, n - step * (count - 1)))
            m = start + step * np.arange(count)
        else:
            m = rng.choice(n, size=count, replace=False)
        maps.append(np.asarray(m, dtype=np.int64))
    return n, maps


@settings(max_examples=10, deadline=None)
@given(chunk_mixes(), st.sampled_from(list(Organization)))
def test_collective_resolution_matches_local_resolution(mix, level):
    """``resolve_chunk_positions`` (index blocks dealt across ranks and
    shipped over alltoallv) must return byte-identical positions to a
    purely local ``_chunk_positions`` — for every rank count 1-8, every
    organization level, arithmetic/indexed/mixed chunks, and wanted sets
    including foreign shares and empty participants — cold, and again
    warm from the cache the collective round just filled."""
    from repro.core.datapath import (
        IndexBlockCache, _chunk_positions, locate_instance,
        resolve_chunk_positions,
    )
    from repro.mpiio.consts import MODE_RDONLY
    from repro.mpiio.file import File

    n, maps = mix
    nprocs = len(maps)

    def program(ctx):
        sdm = SDM(ctx, "prop", organization=level, storage_order=CHUNKED)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 2.0 + 0.5)
        where, chunks, version = locate_instance(
            ctx.comm, sdm.tables, sdm.runid, "d", 0, proc=ctx.proc
        )
        f = File.open(ctx.comm, ctx.service("fs"), where[0], MODE_RDONLY)
        lo = n * ctx.rank // ctx.size
        hi = n * (ctx.rank + 1) // ctx.size
        wanteds = [
            np.sort(mine),                        # this rank's own elements
            np.arange(lo, hi, dtype=np.int64),    # a foreign share
            # Odd ranks sit a round out entirely: collective resolution
            # must tolerate empty-wanted participants.
            np.sort(mine) if ctx.rank % 2 == 0
            else np.empty(0, dtype=np.int64),
        ]
        out = []
        cache = IndexBlockCache()
        for wanted in wanteds:
            local = _chunk_positions(f, chunks, DOUBLE, wanted, None, version)
            cold = resolve_chunk_positions(
                ctx.comm, f, chunks, DOUBLE, wanted, cache, version
            )
            warm = resolve_chunk_positions(
                ctx.comm, f, chunks, DOUBLE, wanted, cache, version
            )
            out.append((local, cold, warm))
        f.close()
        sdm.finalize(handle)
        return out

    job = mpirun(program, nprocs, machine=fast_test(),
                 services=sdm_services())
    for rank, variants in enumerate(job.values):
        for v, (local, cold, warm) in enumerate(variants):
            np.testing.assert_array_equal(
                cold, local,
                err_msg=f"cold collective vs local, rank {rank} variant {v}",
            )
            np.testing.assert_array_equal(
                warm, local,
                err_msg=f"warm collective vs local, rank {rank} variant {v}",
            )
