"""Property: storage orders are observationally equivalent on reads.

For random irregular partitions (unsorted rank maps, optional ghost
overlaps with agreeing values), random rank counts, and every file
organization level, ``SDM.read`` must return identical arrays whether the
instance was written canonically, chunked, or chunked and then
``reorganize()``d — and a whole-array read of the file must see global
element order in the canonical and reorganized cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CANONICAL, CHUNKED
from repro.dtypes import DOUBLE
from repro.mpi import mpirun


@st.composite
def partitions(draw):
    """(global size, per-rank unsorted maps) with every gid covered, plus
    optional cross-rank ghost duplicates."""
    nprocs = draw(st.integers(1, 4))
    n = draw(st.integers(nprocs * 2, 24))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    cuts = np.sort(
        rng.choice(np.arange(1, n), nprocs - 1, replace=False)
    ) if nprocs > 1 else np.array([], dtype=int)
    maps = [p.astype(np.int64) for p in np.split(perm, cuts)]
    if draw(st.booleans()) and nprocs > 1:
        # Ghosts: each rank also writes one gid owned by the next rank.
        maps = [
            np.concatenate([m, maps[(r + 1) % nprocs][:1]])
            for r, m in enumerate(maps)
        ]
    return n, maps


def run_once(order, level, n, maps, reorganize):
    nprocs = len(maps)

    def program(ctx):
        sdm = SDM(ctx, "prop", organization=level, storage_order=order)
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        sdm.write(handle, "d", 0, mine * 1.5 + 0.25)  # value = f(gid): ghosts agree
        if reorganize:
            sdm.reorganize(handle, "d", 0)
        back = np.empty(len(mine))
        sdm.read(handle, "d", 0, back)
        # A second, foreign view: this rank's even share of the globe.
        lo = n * ctx.rank // ctx.size
        hi = n * (ctx.rank + 1) // ctx.size
        share = np.arange(lo, hi, dtype=np.int64)
        sdm.data_view(handle, "d", share)
        whole = np.empty(len(share))
        sdm.read(handle, "d", 0, whole)
        sdm.finalize(handle)
        return back, whole

    job = mpirun(program, nprocs, machine=fast_test(), services=sdm_services())
    backs = [b for b, _ in job.values]
    whole = np.concatenate([w for _, w in job.values])
    return backs, whole


@settings(max_examples=12, deadline=None)
@given(partitions(), st.sampled_from(list(Organization)))
def test_read_equivalence_across_storage_orders(partition, level):
    n, maps = partition
    expected_global = np.arange(n) * 1.5 + 0.25
    results = {
        variant: run_once(order, level, n, maps, reorganize)
        for variant, (order, reorganize) in {
            "canonical": (CANONICAL, False),
            "chunked": (CHUNKED, False),
            "reorganized": (CHUNKED, True),
        }.items()
    }
    for variant, (backs, whole) in results.items():
        for rank, back in enumerate(backs):
            np.testing.assert_allclose(
                back, maps[rank] * 1.5 + 0.25,
                err_msg=f"{variant} read-after-write, rank {rank}",
            )
        np.testing.assert_allclose(
            whole, expected_global, err_msg=f"{variant} global read"
        )
