"""Property: the mini-SQL engine agrees with a plain-Python model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadb import Database

_value = st.one_of(
    st.none(),
    st.integers(-1000, 1000),
)
_text = st.sampled_from(["alpha", "beta", "gamma", "delta", None])


@st.composite
def table_and_query(draw):
    rows = draw(
        st.lists(st.tuples(_value, _text, _value), min_size=0, max_size=25)
    )
    col = draw(st.sampled_from(["a", "c"]))
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    needle = draw(st.integers(-1000, 1000))
    return rows, col, op, needle


_PY_OPS = {
    "=": lambda x, y: x == y,
    "!=": lambda x, y: x != y,
    "<": lambda x, y: x < y,
    "<=": lambda x, y: x <= y,
    ">": lambda x, y: x > y,
    ">=": lambda x, y: x >= y,
}


@settings(max_examples=150, deadline=None)
@given(table_and_query())
def test_where_filter_matches_python_model(case):
    rows, col, op, needle = case
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)")
    for row in rows:
        db.execute("INSERT INTO t VALUES (?, ?, ?)", row)

    got = db.execute(f"SELECT * FROM t WHERE {col} {op} ?", (needle,))
    idx = 0 if col == "a" else 2
    expect = [
        r for r in rows
        if r[idx] is not None and _PY_OPS[op](r[idx], needle)
    ]
    assert got == expect

    # Aggregates agree with the model too.
    count = db.execute(f"SELECT COUNT(*) FROM t WHERE {col} {op} ?", (needle,))
    assert count == [(len(expect),)]


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
             min_size=1, max_size=20)
)
def test_order_by_matches_python_sort(rows):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    for row in rows:
        db.execute("INSERT INTO t VALUES (?, ?)", row)
    got = db.execute("SELECT a, b FROM t ORDER BY a, b DESC")
    expect = sorted(rows, key=lambda r: (r[0], -r[1]))
    assert got == expect


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(-50, 50), min_size=0, max_size=30),
    st.integers(-50, 50),
)
def test_delete_then_count_matches_model(values, threshold):
    db = Database()
    db.execute("CREATE TABLE t (v INTEGER)")
    for v in values:
        db.execute("INSERT INTO t VALUES (?)", (v,))
    db.execute("DELETE FROM t WHERE v < ?", (threshold,))
    remaining = db.execute("SELECT v FROM t")
    assert [r[0] for r in remaining] == [v for v in values if v >= threshold]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(-5, 5)),
                min_size=1, max_size=15))
def test_update_matches_model(rows):
    db = Database()
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
    for row in rows:
        db.execute("INSERT INTO t VALUES (?, ?)", row)
    db.execute("UPDATE t SET v = 99 WHERE k >= 10")
    got = db.execute("SELECT k, v FROM t")
    expect = [(k, 99 if k >= 10 else v) for k, v in rows]
    assert got == expect


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(-9999, 9999), st.floats(
    allow_nan=False, allow_infinity=False, width=32)), min_size=0, max_size=15))
def test_persistence_roundtrip_property(rows):
    db = Database()
    db.execute("CREATE TABLE t (i INTEGER, r REAL)")
    for i, r in rows:
        db.execute("INSERT INTO t VALUES (?, ?)", (i, float(r)))
    loaded = Database.loads(db.dump())
    assert loaded.execute("SELECT * FROM t") == db.execute("SELECT * FROM t")
