"""Graph construction and quality metrics."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition import (
    Graph,
    block_partition,
    edge_cut,
    ghost_stats,
    imbalance,
    random_partition,
)


def path_graph(n):
    e1 = np.arange(n - 1)
    e2 = np.arange(1, n)
    return Graph.from_edges(n, e1, e2)


def test_graph_from_edges_csr_structure():
    # Triangle 0-1-2 plus pendant 3.
    g = Graph.from_edges(4, [0, 1, 2, 2], [1, 2, 0, 3])
    assert g.n == 4
    assert g.n_edges == 4
    assert sorted(g.neighbors(2).tolist()) == [0, 1, 3]
    assert g.degree(3) == 1


def test_graph_drops_self_loops_and_merges_parallel():
    g = Graph.from_edges(3, [0, 0, 1, 0], [0, 1, 2, 1], edge_weights=[5, 2, 1, 3])
    assert g.n_edges == 2  # (0,1) merged, (1,2); self-loop dropped
    i = list(g.neighbors(0)).index(1)
    assert g.neighbor_weights(0)[i] == 5  # 2+3 merged


def test_graph_invalid_inputs_rejected():
    with pytest.raises(PartitionError):
        Graph.from_edges(2, [0], [5])
    with pytest.raises(PartitionError):
        Graph.from_edges(0, [], [])
    with pytest.raises(PartitionError):
        Graph.from_edges(3, [0, 1], [1])


def test_edge_cut_known_values():
    g = path_graph(4)  # 0-1-2-3
    assert edge_cut(g, np.array([0, 0, 1, 1])) == 1
    assert edge_cut(g, np.array([0, 1, 0, 1])) == 3
    assert edge_cut(g, np.array([0, 0, 0, 0])) == 0


def test_edge_cut_respects_weights():
    g = Graph.from_edges(3, [0, 1], [1, 2], edge_weights=[10, 1])
    assert edge_cut(g, np.array([0, 1, 1])) == 10
    assert edge_cut(g, np.array([0, 0, 1])) == 1


def test_imbalance_perfect_and_skewed():
    assert imbalance(np.array([0, 0, 1, 1]), 2) == pytest.approx(1.0)
    assert imbalance(np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)


def test_block_partition_contiguous_balanced():
    part = block_partition(10, 3)
    assert (np.diff(part) >= 0).all()
    sizes = np.bincount(part, minlength=3)
    assert sizes.max() - sizes.min() <= 1


def test_random_partition_seeded_reproducible():
    a = random_partition(100, 4, seed=7)
    b = random_partition(100, 4, seed=7)
    c = random_partition(100, 4, seed=8)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)
    assert set(np.unique(a)) <= set(range(4))


def test_ghost_stats_paper_example():
    """The exact example of Figure 1: 5 nodes, 4 edges, 2 processes.

    edges: 0=(0,1) 1=(1,4) 2=(0,3) 3=(1,2); partitioning vector [0,1,1,0,1].
    Paper: nodes 0,3 -> p0 and 1,2,4 -> p1; edges 0,2 -> p0 and 0,1,3 -> p1
    (edge 0 is a ghost edge of both).
    """
    edge1 = np.array([0, 1, 0, 1])
    edge2 = np.array([1, 4, 3, 2])
    part = np.array([0, 1, 1, 0, 1])
    st = ghost_stats(edge1, edge2, part, 2)
    assert st.local_edges.tolist() == [2, 3]
    # p0 holds nodes 0,3 + ghost 1; p1 holds 1,2,4 + ghost 0.
    assert st.owned_nodes.tolist() == [2, 3]
    assert st.ghost_nodes.tolist() == [1, 1]
    assert st.replicated_edges == 1


def test_ghost_stats_no_cut_edges():
    st = ghost_stats([0, 2], [1, 3], np.array([0, 0, 1, 1]), 2)
    assert st.replicated_edges == 0
    assert st.total_ghosts == 0
