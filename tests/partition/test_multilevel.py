"""Multilevel k-way partitioner: validity, balance, quality, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.mesh import box_tet_mesh
from repro.partition import (
    Graph,
    block_partition,
    edge_cut,
    imbalance,
    multilevel_kway,
    random_partition,
)
from repro.partition.coarsen import contract, heavy_edge_matching
from repro.partition.refine import refine_kway


def grid_graph(n):
    """n x n 4-connected grid."""
    ids = np.arange(n * n).reshape(n, n)
    e1 = np.concatenate([ids[:, :-1].reshape(-1), ids[:-1, :].reshape(-1)])
    e2 = np.concatenate([ids[:, 1:].reshape(-1), ids[1:, :].reshape(-1)])
    return Graph.from_edges(n * n, e1, e2)


def mesh_graph(cells):
    m = box_tet_mesh(cells, cells, cells)
    return Graph.from_edges(m.n_nodes, m.edge1, m.edge2)


# ---------------------------------------------------------------------------
# Coarsening
# ---------------------------------------------------------------------------

def test_heavy_edge_matching_is_a_matching():
    g = grid_graph(10)
    match = heavy_edge_matching(g, np.random.default_rng(0))
    for v in range(g.n):
        m = match[v]
        assert match[m] == v  # involution


def test_contract_preserves_total_vertex_weight():
    g = grid_graph(8)
    match = heavy_edge_matching(g, np.random.default_rng(1))
    coarse, cmap = contract(g, match)
    assert coarse.total_vertex_weight() == g.total_vertex_weight()
    assert coarse.n < g.n
    assert len(cmap) == g.n
    assert cmap.max() == coarse.n - 1


def test_contract_roughly_halves_grid():
    g = grid_graph(16)
    match = heavy_edge_matching(g, np.random.default_rng(2))
    coarse, _ = contract(g, match)
    assert coarse.n <= 0.65 * g.n  # grids match well


# ---------------------------------------------------------------------------
# Refinement
# ---------------------------------------------------------------------------

def test_refine_never_increases_cut():
    g = grid_graph(12)
    rng = np.random.default_rng(3)
    part = rng.integers(0, 4, size=g.n).astype(np.int64)
    before = edge_cut(g, part)
    refined = refine_kway(g, part.copy(), 4)
    after = edge_cut(g, refined)
    assert after <= before


def test_refine_respects_balance_tolerance():
    g = grid_graph(12)
    part = block_partition(g.n, 4)
    refined = refine_kway(g, part.copy(), 4, tolerance=1.05)
    assert imbalance(refined, 4) <= 1.07  # small slack for integer rounding


# ---------------------------------------------------------------------------
# Full multilevel
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("k", [2, 4, 8])
def test_multilevel_valid_and_balanced_on_grid(k):
    g = grid_graph(20)
    part = multilevel_kway(g, k, seed=0)
    assert len(part) == g.n
    assert set(np.unique(part)) == set(range(k))
    assert imbalance(part, k) <= 1.10


def test_multilevel_beats_random_by_a_lot():
    g = grid_graph(24)
    k = 8
    ml_cut = edge_cut(g, multilevel_kway(g, k, seed=0))
    rnd_cut = edge_cut(g, random_partition(g.n, k, seed=0))
    assert ml_cut < rnd_cut / 5


def test_multilevel_near_optimal_on_grid_bisection():
    # Optimal bisection of an n x n grid cuts n edges.
    n = 16
    g = grid_graph(n)
    cut = edge_cut(g, multilevel_kway(g, 2, seed=0))
    assert cut <= 2.5 * n


def test_multilevel_on_tet_mesh_quality():
    g = mesh_graph(8)
    k = 8
    part = multilevel_kway(g, k, seed=1)
    assert imbalance(part, k) <= 1.10
    ml = edge_cut(g, part)
    blk = edge_cut(g, block_partition(g.n, k))
    # Structured numbering makes block decent; multilevel must be at least
    # comparable and far better than random.
    rnd = edge_cut(g, random_partition(g.n, k, seed=1))
    assert ml <= blk * 1.5
    assert ml < rnd / 3


def test_multilevel_deterministic_per_seed():
    g = grid_graph(12)
    a = multilevel_kway(g, 4, seed=42)
    b = multilevel_kway(g, 4, seed=42)
    np.testing.assert_array_equal(a, b)


def test_multilevel_k1_and_errors():
    g = grid_graph(4)
    np.testing.assert_array_equal(multilevel_kway(g, 1), np.zeros(16, dtype=np.int64))
    with pytest.raises(PartitionError):
        multilevel_kway(g, 0)
    with pytest.raises(PartitionError):
        multilevel_kway(g, 17)


def test_multilevel_disconnected_graph():
    # Two disjoint triangles plus isolated vertices.
    g = Graph.from_edges(8, [0, 1, 2, 4, 5, 6], [1, 2, 0, 5, 6, 4])
    part = multilevel_kway(g, 2, seed=0)
    assert len(part) == 8
    assert imbalance(part, 2) <= 1.5


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 12), st.integers(2, 4), st.integers(0, 10_000))
def test_multilevel_always_valid_property(n, k, seed):
    """Any grid, any k, any seed: output is a valid partition vector."""
    g = grid_graph(n)
    part = multilevel_kway(g, k, seed=seed)
    assert len(part) == g.n
    assert part.min() >= 0 and part.max() < k
    # Every part non-empty (n*n >> k here).
    assert len(np.unique(part)) == k
    assert imbalance(part, k) <= 1.25
