"""Trace recording: kernel-level log plus PFS instrumentation."""

import numpy as np

from repro.config import fast_test
from repro.mpi import mpirun
from repro.mpiio import File, MODE_CREATE, MODE_RDWR
from repro.pfs import FileSystem
from repro.simt import Trace, TraceRecord


def test_trace_disabled_records_nothing():
    t = Trace(enabled=False)
    t.record(1.0, "a", "label")
    assert len(t) == 0
    assert t.last() is None


def test_trace_enabled_records_and_filters():
    t = Trace(enabled=True)
    t.record(1.0, "rank0", "open", {"file": "x"})
    t.record(2.0, "rank1", "write", {"bytes": 10})
    t.record(3.0, "rank0", "write", {"bytes": 20})
    assert len(t) == 3
    assert [r.time for r in t] == [1.0, 2.0, 3.0]
    assert len(t.by_actor("rank0")) == 2
    assert len(t.by_label("write")) == 2
    assert t.last("open") == TraceRecord(1.0, "rank0", "open", {"file": "x"})
    assert t.last().data == {"bytes": 20}
    t.clear()
    assert len(t) == 0


def test_mpirun_trace_captures_pfs_activity():
    def services(sim, machine):
        return {"fs": FileSystem(sim, machine)}

    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "t.dat", MODE_CREATE | MODE_RDWR)
        f.write_at_all(ctx.rank * 80, np.arange(10, dtype=np.float64))
        f.close()
        return None

    job = mpirun(program, 2, machine=fast_test(), services=services,
                 trace=True)
    trace = job.sim.trace
    opens = trace.by_label("pfs.open")
    writes = trace.by_label("pfs.write")
    assert len(opens) == 2  # one per rank
    assert all(r.data["file"] == "t.dat" for r in opens)
    assert sum(r.data["bytes"] for r in writes) == 160
    # Timestamps are monotone within the log.
    times = [r.time for r in trace]
    assert times == sorted(times)


def test_mpirun_without_trace_stays_empty(monkeypatch):
    # SPMD_VERIFY implies recording (signatures ride the trace), so pin
    # it off: this test is about the default-quiet path.
    monkeypatch.delenv("SPMD_VERIFY", raising=False)

    def services(sim, machine):
        return {"fs": FileSystem(sim, machine)}

    def program(ctx):
        fs = ctx.service("fs")
        f = File.open(ctx.comm, fs, "t.dat", MODE_CREATE | MODE_RDWR)
        f.close()
        return None

    job = mpirun(program, 2, machine=fast_test(), services=services)
    assert len(job.sim.trace) == 0
