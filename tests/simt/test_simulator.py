"""Unit tests for the discrete-event kernel: clock, processes, determinism."""

import pytest

from repro.errors import SimDeadlockError, SimError, SimProcessCrashed
from repro.simt import Simulator


def test_single_process_runs_and_returns_result():
    def fn(proc, x):
        proc.hold(2.5)
        return x + 1

    sim = Simulator()
    p = sim.spawn(fn, 41)
    end = sim.run()
    assert p.result == 42
    assert p.error is None
    assert end == pytest.approx(2.5)
    assert sim.now == pytest.approx(2.5)


def test_clock_starts_at_zero_and_only_advances():
    times = []

    def fn(proc):
        times.append(proc.now)
        proc.hold(1.0)
        times.append(proc.now)
        proc.hold(0.0)
        times.append(proc.now)

    sim = Simulator()
    sim.spawn(fn)
    sim.run()
    assert times == [0.0, 1.0, 1.0]


def test_two_processes_interleave_by_virtual_time():
    order = []

    def fn(proc, label, dt):
        for i in range(3):
            proc.hold(dt)
            order.append((label, i, proc.now))

    sim = Simulator()
    sim.spawn(fn, "fast", 1.0)
    sim.spawn(fn, "slow", 2.5)
    sim.run()
    assert order == [
        ("fast", 0, 1.0),
        ("fast", 1, 2.0),
        ("slow", 0, 2.5),
        ("fast", 2, 3.0),
        ("slow", 1, 5.0),
        ("slow", 2, 7.5),
    ]
    assert sim.now == pytest.approx(7.5)


def test_simultaneous_events_fire_in_spawn_order():
    order = []

    def fn(proc, label):
        proc.hold(1.0)
        order.append(label)

    sim = Simulator()
    for i in range(8):
        sim.spawn(fn, i)
    sim.run()
    assert order == list(range(8))


def test_spawn_delay_offsets_start_time():
    seen = {}

    def fn(proc, key):
        seen[key] = proc.now

    sim = Simulator()
    sim.spawn(fn, "a", delay=0.0)
    sim.spawn(fn, "b", delay=3.0)
    sim.run()
    assert seen == {"a": 0.0, "b": 3.0}


def test_negative_hold_rejected():
    def fn(proc):
        proc.hold(-1.0)

    sim = Simulator()
    sim.spawn(fn)
    with pytest.raises(SimProcessCrashed):
        sim.run()


def test_process_exception_propagates_with_cause():
    def fn(proc):
        proc.hold(1.0)
        raise ValueError("boom")

    sim = Simulator()
    sim.spawn(fn, name="bad")
    with pytest.raises(SimProcessCrashed) as ei:
        sim.run()
    assert "bad" in str(ei.value)
    assert isinstance(ei.value.__cause__, ValueError)


def test_crash_kills_other_processes_cleanly():
    reached = []

    def victim(proc):
        proc.hold(100.0)
        reached.append("victim-late")  # must never run

    def bomber(proc):
        proc.hold(1.0)
        raise RuntimeError("die")

    sim = Simulator()
    v = sim.spawn(victim)
    sim.spawn(bomber)
    with pytest.raises(SimProcessCrashed):
        sim.run()
    assert reached == []
    assert not v.alive


def test_deadlock_detected_when_process_parks_forever():
    def fn(proc):
        proc.park(reason="never-signalled")

    sim = Simulator()
    sim.spawn(fn, name="stuck")
    with pytest.raises(SimDeadlockError) as ei:
        sim.run()
    assert "stuck" in str(ei.value)
    assert "never-signalled" in str(ei.value)


def test_daemon_does_not_keep_simulation_alive():
    ticks = []

    def daemon(proc):
        while True:
            proc.hold(1.0)
            ticks.append(proc.now)

    def worker(proc):
        proc.hold(3.5)

    sim = Simulator()
    sim.spawn(daemon, daemon=True)
    sim.spawn(worker)
    end = sim.run()
    assert end == pytest.approx(3.5)
    # Daemon ticked up to (and possibly at) the end time, then was killed.
    assert all(t <= 3.5 for t in ticks)


def test_run_until_pauses_and_resumes():
    def fn(proc):
        proc.hold(10.0)
        return "done"

    sim = Simulator()
    p = sim.spawn(fn)
    t = sim.run(until=4.0)
    assert t == pytest.approx(4.0)
    assert p.alive
    t = sim.run()
    assert t == pytest.approx(10.0)
    assert p.result == "done"


def test_run_after_finish_is_an_error():
    sim = Simulator()
    sim.spawn(lambda proc: None)
    sim.run()
    with pytest.raises(SimError):
        sim.run()
    with pytest.raises(SimError):
        sim.spawn(lambda proc: None)


def test_call_at_runs_callbacks_in_time_order():
    calls = []
    sim = Simulator()
    sim.call_at(2.0, lambda: calls.append(("b", sim.now)))
    sim.call_at(1.0, lambda: calls.append(("a", sim.now)))

    def fn(proc):
        proc.hold(3.0)

    sim.spawn(fn)
    sim.run()
    assert calls == [("a", 1.0), ("b", 2.0)]


def test_call_at_into_the_past_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_at(-1.0, lambda: None)


def test_schedule_resume_passes_value():
    def waiter(proc):
        return proc.park(reason="value")

    sim = Simulator()
    p = sim.spawn(waiter)
    sim.call_at(5.0, lambda: sim.schedule_resume(p, value="payload"))
    sim.run()
    assert p.result == "payload"
    assert sim.now == pytest.approx(5.0)


def test_many_processes_determinism():
    """Two identical runs produce identical event orderings."""

    def fn(proc, idx, log):
        for step in range(5):
            proc.hold(((idx * 7 + step * 3) % 11) / 10.0 + 0.01)
            log.append((proc.now, idx, step))

    def one_run():
        log = []
        sim = Simulator()
        for i in range(16):
            sim.spawn(fn, i, log)
        sim.run()
        return log, sim.now

    log1, t1 = one_run()
    log2, t2 = one_run()
    assert log1 == log2
    assert t1 == t2
