"""Unit tests for Signal, SimEvent, Resource, and Channel primitives."""

import pytest

from repro.errors import SimDeadlockError, SimError, SimProcessCrashed
from repro.simt import Channel, Resource, Signal, SimEvent, Simulator


# ---------------------------------------------------------------------------
# Signal
# ---------------------------------------------------------------------------

def test_signal_wakes_all_waiters_with_value():
    got = []

    def waiter(proc, sig):
        got.append((proc.name, sig.wait(proc), proc.now))

    def firer(proc, sig):
        proc.hold(2.0)
        assert sig.n_waiting == 3
        n = sig.fire("go")
        assert n == 3

    sim = Simulator()
    sig = Signal(sim)
    for i in range(3):
        sim.spawn(waiter, sig, name=f"w{i}")
    sim.spawn(firer, sig)
    sim.run()
    assert sorted(got) == [("w0", "go", 2.0), ("w1", "go", 2.0), ("w2", "go", 2.0)]


def test_signal_fire_with_no_waiters_returns_zero():
    def fn(proc, sig):
        assert sig.fire() == 0

    sim = Simulator()
    sig = Signal(sim)
    sim.spawn(fn, sig)
    sim.run()


def test_signal_wait_after_fire_blocks_until_next_fire():
    def late_waiter(proc, sig):
        proc.hold(5.0)  # miss the first fire
        sig.wait(proc)

    def firer(proc, sig):
        proc.hold(1.0)
        sig.fire()

    sim = Simulator()
    sig = Signal(sim)
    sim.spawn(late_waiter, sig)
    sim.spawn(firer, sig)
    with pytest.raises(SimDeadlockError):
        sim.run()


# ---------------------------------------------------------------------------
# SimEvent
# ---------------------------------------------------------------------------

def test_simevent_wait_before_and_after_set():
    order = []

    def early(proc, evt):
        order.append(("early", evt.wait(proc), proc.now))

    def setter(proc, evt):
        proc.hold(3.0)
        evt.set(99)

    def late(proc, evt):
        proc.hold(7.0)
        order.append(("late", evt.wait(proc), proc.now))

    sim = Simulator()
    evt = SimEvent(sim)
    sim.spawn(early, evt)
    sim.spawn(setter, evt)
    sim.spawn(late, evt)
    sim.run()
    assert order == [("early", 99, 3.0), ("late", 99, 7.0)]
    assert evt.is_set and evt.value == 99


def test_simevent_double_set_is_error():
    def fn(proc, evt):
        evt.set(1)
        evt.set(2)

    sim = Simulator()
    evt = SimEvent(sim)
    sim.spawn(fn, evt)
    with pytest.raises(SimProcessCrashed) as ei:
        sim.run()
    assert isinstance(ei.value.__cause__, SimError)


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_serializes_beyond_capacity():
    """4 jobs of 1s on a capacity-2 server finish at 1,1,2,2."""
    finish = []

    def job(proc, res):
        with res.request(proc):
            proc.hold(1.0)
        finish.append((proc.name, proc.now))

    sim = Simulator()
    res = Resource(sim, capacity=2)
    for i in range(4):
        sim.spawn(job, res, name=f"j{i}")
    sim.run()
    assert finish == [("j0", 1.0), ("j1", 1.0), ("j2", 2.0), ("j3", 2.0)]


def test_resource_fifo_order_under_contention():
    grants = []

    def job(proc, res, dt):
        res.acquire(proc)
        grants.append(proc.name)
        proc.hold(dt)
        res.release()

    sim = Simulator()
    res = Resource(sim, capacity=1)
    for i in range(5):
        sim.spawn(job, res, 1.0, name=f"j{i}")
    sim.run()
    assert grants == [f"j{i}" for i in range(5)]


def test_resource_invalid_capacity_and_over_release():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)

    res = Resource(sim, capacity=1)

    def fn(proc):
        res.release()  # never acquired

    sim.spawn(fn)
    with pytest.raises(SimProcessCrashed) as ei:
        sim.run()
    assert isinstance(ei.value.__cause__, SimError)


def test_resource_counts_available_and_waiting():
    observed = {}

    def holder(proc, res, sig):
        res.acquire(proc)
        sig.wait(proc)
        res.release()

    def prober(proc, res, sig):
        proc.hold(1.0)
        observed["available"] = res.available
        observed["waiting"] = res.n_waiting
        sig.fire()

    sim = Simulator()
    res = Resource(sim, capacity=2)
    sig = Signal(sim)
    for i in range(3):
        sim.spawn(holder, res, sig, name=f"h{i}")
    sim.spawn(prober, res, sig)
    # h2 waits; after fire, h0/h1 release and h2 acquires, then a second
    # fire is needed for h2 — fire again from a late process.
    def second_fire(proc):
        proc.hold(2.0)
        sig.fire()

    sim.spawn(second_fire)
    sim.run()
    assert observed == {"available": 0, "waiting": 1}


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------

def test_channel_put_then_get_immediate():
    def producer(proc, ch):
        ch.put("a")
        ch.put("b")

    def consumer(proc, ch):
        proc.hold(1.0)
        return [ch.get(proc), ch.get(proc)]

    sim = Simulator()
    ch = Channel(sim)
    sim.spawn(producer, ch)
    c = sim.spawn(consumer, ch)
    sim.run()
    assert c.result == ["a", "b"]


def test_channel_get_blocks_until_delayed_delivery():
    def producer(proc, ch):
        ch.put("late", delay=4.0)

    def consumer(proc, ch):
        item = ch.get(proc)
        return (item, proc.now)

    sim = Simulator()
    ch = Channel(sim)
    sim.spawn(producer, ch)
    c = sim.spawn(consumer, ch)
    sim.run()
    assert c.result == ("late", 4.0)


def test_channel_delayed_items_become_visible_in_delivery_order():
    def producer(proc, ch):
        ch.put("slow", delay=5.0)
        ch.put("fast", delay=1.0)

    def consumer(proc, ch):
        return [ch.get(proc), ch.get(proc)]

    sim = Simulator()
    ch = Channel(sim)
    sim.spawn(producer, ch)
    c = sim.spawn(consumer, ch)
    sim.run()
    assert c.result == ["fast", "slow"]


def test_channel_try_get_nonblocking():
    def fn(proc, ch):
        ok0, _ = ch.try_get()
        ch.put("x")
        ok1, item = ch.try_get()
        return (ok0, ok1, item, len(ch))

    sim = Simulator()
    ch = Channel(sim)
    p = sim.spawn(fn, ch)
    sim.run()
    assert p.result == (False, True, "x", 0)


def test_channel_multiple_getters_fifo():
    got = []

    def getter(proc, ch):
        got.append((proc.name, ch.get(proc)))

    def producer(proc, ch):
        proc.hold(1.0)
        for i in range(3):
            ch.put(i)

    sim = Simulator()
    ch = Channel(sim)
    for i in range(3):
        sim.spawn(getter, ch, name=f"g{i}")
    sim.spawn(producer, ch)
    sim.run()
    assert got == [("g0", 0), ("g1", 1), ("g2", 2)]
