"""Fault injection at the kernel level: FaultPlan, fault points, crashes.

The crash machinery's contract (see ``docs/concurrency.md``, "Failure
model & recovery"):

* with no plan installed, ``fault_point`` is free — no recording, no
  branching beyond one attribute test;
* an observe-only plan records every hit without crashing anything,
  enumerating the workload's complete crash schedule;
* a crashing plan kills exactly its victim at exactly the Nth hit of
  the named point, and the kill is a *crash*, not a graceful exit —
  ``finally`` blocks cannot park or touch the database post-mortem;
* survivors blocked on a crashed process surface as
  ``SimParticipantLost`` (attributable), never a generic deadlock.
"""

import pytest

from repro.config import fast_test
from repro.errors import SimDeadlockError, SimParticipantLost
from repro.mpi import mpirun
from repro.simt import Crashed, FaultPlan, SimEvent, Simulator


def worker(proc, rounds):
    for _ in range(rounds):
        proc.hold(1.0)
        proc.fault_point("step:done")
    return rounds


def test_fault_point_without_plan_is_inert():
    sim = Simulator()
    p = sim.spawn(worker, 3, name="w")
    sim.run()
    assert p.result == 3
    assert sim.fault_log == []


def test_observe_plan_records_schedule_without_crashing():
    sim = Simulator()
    sim.fault_plan = FaultPlan.observe()
    a = sim.spawn(worker, 2, name="a")
    b = sim.spawn(worker, 3, name="b")
    sim.run()
    assert a.result == 2 and b.result == 3
    assert not a.crashed and not b.crashed
    # Hit counts are per (process, point) and 1-based — the log IS the
    # enumerable crash schedule.
    assert sorted(sim.fault_log) == [
        ("a", "step:done", 1),
        ("a", "step:done", 2),
        ("b", "step:done", 1),
        ("b", "step:done", 2),
        ("b", "step:done", 3),
    ]


def test_crash_at_nth_occurrence_kills_only_the_victim():
    sim = Simulator()
    sim.fault_plan = FaultPlan("step:done", victim="a", occurrence=2)
    a = sim.spawn(worker, 4, name="a")
    b = sim.spawn(worker, 4, name="b")
    sim.run()
    assert a.crashed and a.crash_point == "step:done#2"
    assert a.result is None
    assert not b.crashed and b.result == 4
    # The victim's log stops at the fatal hit; the survivor's continues.
    assert ("a", "step:done", 2) in sim.fault_log
    assert ("a", "step:done", 3) not in sim.fault_log
    assert ("b", "step:done", 4) in sim.fault_log


def test_crashed_process_cannot_park_in_cleanup():
    """``finally`` blocks unwinding past a crash must not block: holds,
    waits, and rendezvous all raise ``Crashed`` for a dead process —
    graceful-exit cleanup cannot run post-mortem."""
    seen = []

    def fn(proc):
        try:
            proc.fault_point("boom")
        finally:
            try:
                proc.hold(1.0)
            except Crashed:
                seen.append("hold-refused")
            raise

    sim = Simulator()
    sim.fault_plan = FaultPlan("boom", victim="v")
    p = sim.spawn(fn, name="v")
    sim.run()
    assert p.crashed
    assert seen == ["hold-refused"]


def test_survivor_blocked_on_crashed_process_is_participant_lost():
    def victim(proc, ev):
        proc.fault_point("boom")
        ev.set()

    def waiter(proc, ev):
        ev.wait(proc)

    sim = Simulator()
    sim.fault_plan = FaultPlan("boom", victim="v")
    ev = SimEvent(sim)
    sim.spawn(victim, ev, name="v")
    sim.spawn(waiter, ev, name="w")
    with pytest.raises(SimParticipantLost) as ei:
        sim.run()
    # Attributable: names the dead process and its crash point, and is
    # still a SimDeadlockError for callers catching broadly.
    assert "v[boom#1]" in str(ei.value)
    assert isinstance(ei.value, SimDeadlockError)


def test_mpirun_with_plan_reports_crash_instead_of_raising():
    def program(ctx):
        ctx.comm.barrier()
        if ctx.rank == 0:
            ctx.proc.fault_point("mid:job")
        return ctx.rank

    plan = FaultPlan("mid:job", victim="rank0")
    job = mpirun(program, 3, machine=fast_test(), fault_plan=plan)
    assert job.crashed == ["rank0"]
    # Survivors with no further rendezvous on the dead rank finish.
    assert job.values[0] is None
    assert job.values[1:] == [1, 2]
    assert ("rank0", "mid:job", 1) in job.fault_log


def test_mpirun_survivors_stalled_on_dead_rank_end_cleanly():
    """A collective the dead rank never joins stalls the survivors; with
    a plan installed the job still ends (no exception), reporting the
    crash — the stalled survivors just have no values."""

    def program(ctx):
        if ctx.rank == 0:
            ctx.proc.fault_point("pre:barrier")
        ctx.comm.barrier()
        return ctx.rank

    plan = FaultPlan("pre:barrier", victim="rank0")
    job = mpirun(program, 3, machine=fast_test(), fault_plan=plan)
    assert job.crashed == ["rank0"]
    assert job.values == [None, None, None]


def test_mpirun_without_plan_still_raises_on_deadlock():
    def program(ctx):
        if ctx.rank == 0:
            return 0  # skips the barrier: a bug, not an injected fault
        ctx.comm.barrier()

    with pytest.raises(SimDeadlockError):
        mpirun(program, 2, machine=fast_test())
