"""Collective semantics and cost-model sanity across process counts."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.errors import SimProcessCrashed
from repro.mpi import MAX, MIN, PROD, SUM, mpirun

SIZES = [1, 2, 3, 4, 7, 8]


def run(fn, nprocs, **kw):
    kw.setdefault("machine", fast_test())
    return mpirun(fn, nprocs, **kw)


@pytest.mark.parametrize("p", SIZES)
def test_bcast_delivers_root_object(p):
    def program(ctx):
        return ctx.comm.bcast({"n": 42} if ctx.rank == 0 else None, root=0)

    job = run(program, p)
    assert all(v == {"n": 42} for v in job.values)


def test_bcast_nonzero_root():
    def program(ctx):
        return ctx.comm.bcast("payload" if ctx.rank == 2 else None, root=2)

    job = run(program, 4)
    assert job.values == ["payload"] * 4


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_sum_scalar(p):
    def program(ctx):
        return ctx.comm.allreduce(ctx.rank + 1, op=SUM)

    job = run(program, p)
    expected = p * (p + 1) // 2
    assert job.values == [expected] * p


def test_allreduce_numpy_elementwise():
    def program(ctx):
        arr = np.full(5, float(ctx.rank))
        return ctx.comm.allreduce(arr, op=MAX)

    job = run(program, 4)
    for v in job.values:
        np.testing.assert_array_equal(v, np.full(5, 3.0))


@pytest.mark.parametrize("op,expected", [(SUM, 10), (PROD, 24), (MAX, 4), (MIN, 1)])
def test_reduce_ops_to_root(op, expected):
    def program(ctx):
        return ctx.comm.reduce(ctx.rank + 1, op=op, root=0)

    job = run(program, 4)
    assert job.values[0] == expected
    assert job.values[1:] == [None, None, None]


@pytest.mark.parametrize("p", SIZES)
def test_gather_collects_in_rank_order(p):
    def program(ctx):
        return ctx.comm.gather(ctx.rank * 10, root=0)

    job = run(program, p)
    assert job.values[0] == [r * 10 for r in range(p)]
    assert all(v is None for v in job.values[1:])


@pytest.mark.parametrize("p", SIZES)
def test_allgather_everyone_gets_everything(p):
    def program(ctx):
        return ctx.comm.allgather(chr(ord("a") + ctx.rank))

    job = run(program, p)
    expected = [chr(ord("a") + r) for r in range(p)]
    assert job.values == [expected] * p


@pytest.mark.parametrize("p", SIZES)
def test_scatter_distributes_root_sequence(p):
    def program(ctx):
        chunks = [f"chunk{r}" for r in range(ctx.size)] if ctx.rank == 0 else None
        return ctx.comm.scatter(chunks, root=0)

    job = run(program, p)
    assert job.values == [f"chunk{r}" for r in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_alltoallv_personalized_exchange(p):
    def program(ctx):
        sends = [(ctx.rank, d) for d in range(ctx.size)]
        return ctx.comm.alltoallv(sends)

    job = run(program, p)
    for r, got in enumerate(job.values):
        assert got == [(src, r) for src in range(p)]


def test_alltoallv_with_numpy_payloads():
    def program(ctx):
        sends = [np.full(3, ctx.rank * 10 + d) for d in range(ctx.size)]
        got = ctx.comm.alltoallv(sends)
        return np.concatenate(got)

    job = run(program, 3)
    for r, v in enumerate(job.values):
        np.testing.assert_array_equal(v, np.repeat([r, 10 + r, 20 + r], 3))


@pytest.mark.parametrize("p", SIZES)
def test_scan_inclusive_prefix(p):
    def program(ctx):
        return ctx.comm.scan(ctx.rank + 1, op=SUM)

    job = run(program, p)
    assert job.values == [(r + 1) * (r + 2) // 2 for r in range(p)]


def test_barrier_synchronizes_completion_times():
    def program(ctx):
        ctx.proc.hold(float(ctx.rank))  # stagger arrivals 0..3
        ctx.comm.barrier()
        return ctx.now

    job = run(program, 4)
    # Everyone leaves at (essentially) the same instant >= slowest arrival.
    assert max(job.values) - min(job.values) < 1e-9
    assert min(job.values) >= 3.0


def test_collective_op_mismatch_detected():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.bcast("x", root=0)
        else:
            ctx.comm.barrier()

    with pytest.raises(SimProcessCrashed) as ei:
        run(program, 2)
    assert "bcast" in str(ei.value.__cause__) or "barrier" in str(ei.value.__cause__)


def test_collective_root_mismatch_detected():
    def program(ctx):
        ctx.comm.bcast("x", root=ctx.rank)  # different roots

    with pytest.raises(SimProcessCrashed):
        run(program, 2)


def test_consecutive_collectives_keep_order():
    def program(ctx):
        a = ctx.comm.allreduce(1, op=SUM)
        b = ctx.comm.allgather(ctx.rank)
        c = ctx.comm.bcast("end" if ctx.rank == 1 else None, root=1)
        return (a, b, c)

    job = run(program, 4)
    assert job.values == [(4, [0, 1, 2, 3], "end")] * 4


def test_bigger_payload_costs_more_time():
    def program(ctx):
        t0 = ctx.now
        ctx.comm.allreduce(np.zeros(10, dtype=np.float64))
        t_small = ctx.now - t0
        t0 = ctx.now
        ctx.comm.allreduce(np.zeros(1_000_000, dtype=np.float64))
        t_big = ctx.now - t0
        return t_small, t_big

    job = mpirun(program, 4)  # default origin2000 model
    t_small, t_big = job.values[0]
    assert t_big > 10 * t_small


def test_alltoallv_cost_grows_with_process_count():
    def program(ctx):
        t0 = ctx.now
        ctx.comm.alltoallv([np.zeros(1000)] * ctx.size)
        return ctx.now - t0

    t4 = mpirun(program, 4).values[0]
    t16 = mpirun(program, 16).values[0]
    assert t16 > t4  # more rounds, more data


def test_phase_timer_records_collective_time():
    def program(ctx):
        with ctx.phase("sync"):
            ctx.proc.hold(1.0 * ctx.rank)
            ctx.comm.barrier()
        with ctx.phase("work"):
            ctx.proc.hold(2.0)
        return None

    job = run(program, 3)
    assert job.phase_max("sync") >= 2.0  # rank 0 waited for rank 2
    assert job.phase_max("work") == pytest.approx(2.0)
    assert set(job.phase_names()) == {"sync", "work"}
