"""Support modules: payload sizing, reduce ops, requests, phase timers."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.mpi import MAX, MIN, PROD, SUM, Request, mpirun
from repro.mpi.nbytes import payload_nbytes
from repro.simt import SimEvent, Simulator


# ---------------------------------------------------------------------------
# payload_nbytes
# ---------------------------------------------------------------------------

def test_nbytes_numpy_exact():
    assert payload_nbytes(np.zeros(100, dtype=np.float64)) == 800
    assert payload_nbytes(np.zeros((4, 4), dtype=np.int32)) == 64


def test_nbytes_bytes_and_strings():
    assert payload_nbytes(b"abc") == 3
    assert payload_nbytes(bytearray(10)) == 10
    assert payload_nbytes("hello") == 5
    assert payload_nbytes("héllo") == 6  # utf-8


def test_nbytes_scalars_and_none():
    for v in (None, 1, 1.5, True, complex(1, 2), np.int64(7)):
        assert payload_nbytes(v) == 8


def test_nbytes_containers_recursive():
    flat = payload_nbytes([1, 2, 3])
    assert flat == 16 + 3 * 8
    nested = payload_nbytes({"a": np.zeros(10), "b": [1, 2]})
    assert nested == 16 + (1 + 80) + (1 + 16 + 16)


def test_nbytes_object_with_dict():
    class Thing:
        def __init__(self):
            self.data = np.zeros(4, dtype=np.float64)

    assert payload_nbytes(Thing()) >= 32


# ---------------------------------------------------------------------------
# reduce ops
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "op,a,b,expect",
    [
        (SUM, 2, 3, 5),
        (PROD, 2, 3, 6),
        (MAX, 2, 3, 3),
        (MIN, 2, 3, 2),
    ],
)
def test_ops_scalars(op, a, b, expect):
    assert op(a, b) == expect


def test_ops_arrays_elementwise():
    a = np.array([1.0, 5.0])
    b = np.array([3.0, 2.0])
    np.testing.assert_array_equal(SUM(a, b), [4.0, 7.0])
    np.testing.assert_array_equal(MAX(a, b), [3.0, 5.0])
    np.testing.assert_array_equal(MIN(a, b), [1.0, 2.0])
    np.testing.assert_array_equal(PROD(a, b), [3.0, 10.0])


def test_ops_mixed_scalar_array():
    a = np.array([1.0, 5.0])
    np.testing.assert_array_equal(MAX(a, 3.0), [3.0, 5.0])


# ---------------------------------------------------------------------------
# Request
# ---------------------------------------------------------------------------

def test_request_test_and_waitall():
    sim = Simulator()

    def fn(proc):
        e1, e2 = SimEvent(sim), SimEvent(sim)
        r1, r2 = Request(e1, "isend"), Request(e2, "irecv")
        assert r1.test() == (False, None)
        e1.set(None)
        e2.set(("payload", None))
        assert r1.test() == (True, None)
        assert r2.test() == (True, "payload")
        return Request.waitall(proc, [r1, r2])

    p = sim.spawn(fn)
    sim.run()
    assert p.result == [None, "payload"]


# ---------------------------------------------------------------------------
# Phase timers
# ---------------------------------------------------------------------------

def test_phase_timer_nesting_and_counts():
    def program(ctx):
        with ctx.phase("outer"):
            ctx.proc.hold(1.0)
            with ctx.phase("inner"):
                ctx.proc.hold(2.0)
        with ctx.phase("inner"):
            ctx.proc.hold(0.5)
        return ctx.timer.counts

    job = mpirun(program, 1, machine=fast_test())
    totals = job.phase_totals[0]
    assert totals["outer"] == pytest.approx(3.0)  # includes nested time
    assert totals["inner"] == pytest.approx(2.5)
    assert job.values[0] == {"outer": 1, "inner": 2}


def test_phase_timer_records_on_exception():
    def program(ctx):
        try:
            with ctx.phase("risky"):
                ctx.proc.hold(1.0)
                raise ValueError("x")
        except ValueError:
            pass
        return ctx.timer.total("risky")

    job = mpirun(program, 1, machine=fast_test())
    assert job.values[0] == pytest.approx(1.0)


def test_jobresult_phase_aggregates():
    def program(ctx):
        with ctx.phase("work"):
            ctx.proc.hold(float(ctx.rank + 1))
        return None

    job = mpirun(program, 4, machine=fast_test())
    assert job.phase_max("work") == pytest.approx(4.0)
    assert job.phase_mean("work") == pytest.approx(2.5)
    assert job.phase_max("nonexistent") == 0.0
    assert job.phase_names() == ["work"]
