"""Communicator split/dup: grouping, isolation, collectives on subgroups."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.mpi import ANY_SOURCE, mpirun


def run(fn, nprocs, **kw):
    kw.setdefault("machine", fast_test())
    return mpirun(fn, nprocs, **kw)


def test_split_by_parity_groups_and_ranks():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2, key=ctx.rank)
        return (sub.rank, sub.size)

    job = run(program, 6)
    # Evens: world 0,2,4 -> sub ranks 0,1,2; odds likewise.
    assert job.values == [(0, 3), (0, 3), (1, 3), (1, 3), (2, 3), (2, 3)]


def test_split_key_reorders_ranks():
    def program(ctx):
        sub = ctx.comm.split(color=0, key=-ctx.rank)  # reverse order
        return sub.rank

    job = run(program, 4)
    assert job.values == [3, 2, 1, 0]


def test_split_undefined_color_opts_out():
    def program(ctx):
        sub = ctx.comm.split(color=None if ctx.rank == 0 else 1)
        return None if sub is None else sub.size

    job = run(program, 4)
    assert job.values == [None, 3, 3, 3]


def test_subgroup_collectives_stay_in_group():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        total = sub.allreduce(ctx.rank)
        gathered = sub.allgather(ctx.rank)
        return total, gathered

    job = run(program, 6)
    for r, (total, gathered) in enumerate(job.values):
        expect = [0, 2, 4] if r % 2 == 0 else [1, 3, 5]
        assert total == sum(expect)
        assert gathered == expect


def test_subgroup_p2p_uses_group_ranks():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank // 2)  # pairs (0,1), (2,3)
        partner = 1 - sub.rank
        return ctx.rank, sub.sendrecv(f"w{ctx.rank}", dest=partner, source=partner)

    job = run(program, 4)
    assert job.values == [(0, "w1"), (1, "w0"), (2, "w3"), (3, "w2")]


def test_split_isolates_message_contexts():
    """A message on the world comm must not match a subcomm receive."""

    def program(ctx):
        sub = ctx.comm.split(color=0, key=ctx.rank)
        if ctx.rank == 0:
            ctx.comm.send("world-msg", dest=1, tag=7)
            sub.send("sub-msg", dest=1, tag=7)
            return None
        if ctx.rank == 1:
            got_sub = sub.recv(source=0, tag=7)
            got_world = ctx.comm.recv(source=0, tag=7)
            return got_sub, got_world
        return None

    job = run(program, 2)
    assert job.values[1] == ("sub-msg", "world-msg")


def test_dup_isolated_but_same_group():
    def program(ctx):
        dup = ctx.comm.dup()
        assert dup.rank == ctx.rank and dup.size == ctx.size
        if ctx.rank == 0:
            dup.send("on-dup", dest=1)
        if ctx.rank == 1:
            st = dup.iprobe()  # message may not have arrived yet
            got = dup.recv(source=0)
            none_on_world = ctx.comm.iprobe(source=ANY_SOURCE)
            return got, none_on_world
        return None

    job = run(program, 2)
    got, none_on_world = job.values[1]
    assert got == "on-dup"
    assert none_on_world is None


def test_nested_split_of_split():
    def program(ctx):
        half = ctx.comm.split(color=ctx.rank // 4)       # two halves of 4
        quarter = half.split(color=half.rank // 2)       # pairs
        return quarter.allgather(ctx.rank)

    job = run(program, 8)
    assert job.values[0] == [0, 1]
    assert job.values[2] == [2, 3]
    assert job.values[5] == [4, 5]
    assert job.values[7] == [6, 7]


def test_split_ring_shift_within_group():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        return sub.ring_shift(ctx.rank)

    job = run(program, 6)
    # Evens ring: 0<-4, 2<-0, 4<-2; odds ring: 1<-5, 3<-1, 5<-3.
    assert job.values == [4, 5, 0, 1, 2, 3]
