"""Point-to-point semantics: matching, wildcards, ordering, nonblocking."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.errors import MPIInvalidRank, SimDeadlockError, SimProcessCrashed
from repro.mpi import ANY_SOURCE, ANY_TAG, PROC_NULL, Request, Status, mpirun


def run(fn, nprocs, **kw):
    kw.setdefault("machine", fast_test())
    return mpirun(fn, nprocs, **kw)


def test_send_recv_value():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send({"a": 7}, dest=1, tag=11)
            return None
        return ctx.comm.recv(source=0, tag=11)

    job = run(program, 2)
    assert job.values[1] == {"a": 7}


def test_send_recv_numpy_array_by_reference():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.arange(10, dtype=np.int64), dest=1)
            return None
        arr = ctx.comm.recv(source=0)
        return arr.sum()

    job = run(program, 2)
    assert job.values[1] == 45


def test_recv_any_source_and_status():
    def program(ctx):
        if ctx.rank == 0:
            st = Status()
            vals = []
            for _ in range(2):
                vals.append(ctx.comm.recv(source=ANY_SOURCE, tag=5, status=st))
            return sorted(vals), st.tag
        ctx.comm.send(ctx.rank * 100, dest=0, tag=5)
        return None

    job = run(program, 3)
    vals, tag = job.values[0]
    assert vals == [100, 200]
    assert tag == 5


def test_tag_matching_selects_correct_message():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send("tag1", dest=1, tag=1)
            ctx.comm.send("tag2", dest=1, tag=2)
            return None
        second = ctx.comm.recv(source=0, tag=2)
        first = ctx.comm.recv(source=0, tag=1)
        return (first, second)

    job = run(program, 2)
    assert job.values[1] == ("tag1", "tag2")


def test_non_overtaking_same_source_same_tag():
    """A big message sent first must be received first, despite a small
    message being injected right after it."""

    def program(ctx):
        if ctx.rank == 0:
            big = np.zeros(1_000_000, dtype=np.float64)
            r1 = ctx.comm.isend(big, dest=1, tag=0)
            r2 = ctx.comm.isend("small", dest=1, tag=0)
            Request.waitall(ctx.proc, [r1, r2])
            return None
        first = ctx.comm.recv(source=0, tag=0)
        second = ctx.comm.recv(source=0, tag=0)
        return (isinstance(first, np.ndarray), second)

    job = run(program, 2)
    assert job.values[1] == (True, "small")


def test_isend_irecv_roundtrip():
    def program(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend([1, 2, 3], dest=1)
            req.wait(ctx.proc)
            return req.done
        req = ctx.comm.irecv(source=0)
        val = req.wait(ctx.proc)
        return val

    job = run(program, 2)
    assert job.values == [True, [1, 2, 3]]


def test_irecv_posted_before_send_arrives():
    def program(ctx):
        if ctx.rank == 1:
            req = ctx.comm.irecv(source=0, tag=9)
            done_before, _ = req.test()
            val = req.wait(ctx.proc)
            return (done_before, val)
        ctx.proc.hold(1.0)
        ctx.comm.send("late", dest=1, tag=9)
        return None

    job = run(program, 2)
    assert job.values[1] == (False, "late")


def test_sendrecv_exchanges_without_deadlock():
    def program(ctx):
        partner = 1 - ctx.rank
        return ctx.comm.sendrecv(f"from{ctx.rank}", dest=partner, source=partner)

    job = run(program, 2)
    assert job.values == ["from1", "from0"]


def test_ring_shift_full_cycle():
    def program(ctx):
        item = ctx.rank
        seen = []
        for _ in range(ctx.size):
            seen.append(item)
            item = ctx.comm.ring_shift(item)
        return seen

    job = run(program, 4)
    # Rank r sees r, r-1, r-2, ... (mod size): everything exactly once.
    for r, seen in enumerate(job.values):
        assert sorted(seen) == [0, 1, 2, 3]
        assert seen[0] == r
        assert seen[1] == (r - 1) % 4


def test_ring_shift_single_rank_identity():
    def program(ctx):
        return ctx.comm.ring_shift("me")

    job = run(program, 1)
    assert job.values == ["me"]


def test_proc_null_send_recv_are_noops():
    def program(ctx):
        ctx.comm.send("x", dest=PROC_NULL)
        st = Status()
        val = ctx.comm.recv(source=PROC_NULL, status=st)
        return (val, st.source)

    job = run(program, 2)
    assert job.values[0] == (None, PROC_NULL)


def test_invalid_rank_raises():
    def program(ctx):
        ctx.comm.send("x", dest=99)

    with pytest.raises(SimProcessCrashed) as ei:
        run(program, 2)
    assert isinstance(ei.value.__cause__, MPIInvalidRank)


def test_unmatched_recv_deadlocks():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.recv(source=1, tag=42)

    with pytest.raises(SimDeadlockError):
        run(program, 2)


def test_iprobe_sees_arrived_message():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send("hello", dest=1, tag=3)
            return None
        ctx.proc.hold(1.0)  # let the message arrive
        st = ctx.comm.iprobe(source=0, tag=3)
        missing = ctx.comm.iprobe(source=0, tag=99)
        val = ctx.comm.recv(source=0, tag=3)
        return (st is not None and st.tag == 3, missing is None, val)

    job = run(program, 2)
    assert job.values[1] == (True, True, "hello")


def test_transfer_time_scales_with_message_size():
    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            ctx.comm.send(np.zeros(1000, dtype=np.float64), dest=1)
            t_small = ctx.now - t0
            t0 = ctx.now
            ctx.comm.send(np.zeros(1_000_000, dtype=np.float64), dest=1)
            t_big = ctx.now - t0
            return t_small, t_big
        ctx.comm.recv(source=0)
        ctx.comm.recv(source=0)
        return None

    job = run(program, 2)
    t_small, t_big = job.values[0]
    assert t_big > t_small * 100  # 1000x the bytes, bandwidth-dominated
