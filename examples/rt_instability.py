"""Rayleigh–Taylor instability checkpointing (paper Section 4.2).

Evolves sinusoidal interface perturbations on a tetrahedral mesh and writes
the node dataset (irregular, by global node number) plus the triangle
dataset (contiguous blocks) at every step — through SDM's collective MPI-IO
and through the original application's strictly sequential writes — then
prints the bandwidth comparison that is Figure 7's story, and verifies that
both paths put identical bytes in the files.

Run:  python examples/rt_instability.py
"""

import numpy as np

from repro.apps.rt import RTRunConfig, run_rt_original, run_rt_sdm
from repro.apps.rt.model import evolve_interface, triangle_field_from_nodes
from repro.config import origin2000
from repro.core import Organization, sdm_services
from repro.core.layout import checkpoint_file_name
from repro.mesh import rt_like_problem
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

NPROCS = 16
CELLS = 10
TIMESTEPS = 5
MB = 1024.0 * 1024.0


def main():
    print(f"building RT problem ({CELLS}^3 box)...")
    problem = rt_like_problem(CELLS)
    mesh = problem.mesh
    node_mb = mesh.n_nodes * 8 / MB
    tri_mb = problem.n_triangles * 8 / MB
    print(f"  {mesh.n_nodes} nodes ({node_mb:.2f} MB/step), "
          f"{problem.n_triangles} triangles ({tri_mb:.2f} MB/step) "
          f"- byte ratio {tri_mb / node_mb:.2f} (paper: 74/36 = 2.06)")

    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    part = multilevel_kway(g, NPROCS, seed=3)

    total_bytes = TIMESTEPS * (mesh.n_nodes + problem.n_triangles) * 8
    print(f"\nwriting {TIMESTEPS} steps x (node + triangle) = "
          f"{total_bytes / MB:.2f} MB on {NPROCS} simulated ranks:")

    results = {}
    for name, program in {
        "original (sequential)": lambda ctx: run_rt_original(
            ctx, problem, part, RTRunConfig(timesteps=TIMESTEPS)
        ),
        "SDM level 1": lambda ctx: run_rt_sdm(
            ctx, problem, part,
            RTRunConfig(organization=Organization.LEVEL_1, timesteps=TIMESTEPS),
        ),
        "SDM level 2/3": lambda ctx: run_rt_sdm(
            ctx, problem, part,
            RTRunConfig(organization=Organization.LEVEL_2, timesteps=TIMESTEPS),
        ),
    }.items():
        job = mpirun(program, NPROCS, machine=origin2000(),
                     services=sdm_services())
        t = job.phase_max("write")
        bw = total_bytes / t / MB
        results[name] = (t, bw, job)
        print(f"  {name:<22} write time {t:8.3f} s   bandwidth {bw:7.2f} MB/s")

    # Verify: SDM level-1 node file at the last step == the model, exactly.
    _, _, job = results["SDM level 1"]
    fs = job.services["fs"]
    t = TIMESTEPS - 1
    fname = checkpoint_file_name("rt", 1, "node_data", t, Organization.LEVEL_1)
    node_file = fs.lookup(fname).store.read(0, mesh.n_nodes * 8).view(np.float64)
    expect = evolve_interface(mesh.coords, (t + 1) * 0.1)
    np.testing.assert_allclose(node_file, expect, atol=1e-12)
    fname = checkpoint_file_name("rt", 1, "triangle_data", t, Organization.LEVEL_1)
    tri_file = fs.lookup(fname).store.read(
        0, problem.n_triangles * 8
    ).view(np.float64)
    np.testing.assert_allclose(
        tri_file, triangle_field_from_nodes(expect, problem.triangle_nodes),
        atol=1e-12,
    )
    speedup = results["SDM level 2/3"][1] / results["original (sequential)"][1]
    print(f"\nfile contents verified against the interface model. "
          f"SDM speedup over original: {speedup:.1f}x")


if __name__ == "__main__":
    main()
