"""Quickstart: the paper's Figures 2 and 3, line for line.

Runs the worked example of Figure 1 — the 5-node, 4-edge mesh with
partitioning vector [0, 1, 1, 0, 1] on two processes — through the
C-style paper API (``SDM_initialize`` ... ``SDM_finalize``), then prints
what each process ended up holding and what landed in the files,
so you can check it against the paper's figure by eye.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.layout import Organization, checkpoint_file_name
from repro.core.papi import (
    SDM_associate_attributes,
    SDM_data_view,
    SDM_finalize,
    SDM_import,
    SDM_index_registry,
    SDM_initialize,
    SDM_make_datalist,
    SDM_make_importlist,
    SDM_partition_data_size,
    SDM_partition_index,
    SDM_partition_index_size,
    SDM_partition_table,
    SDM_read,
    SDM_release_importlist,
    SDM_set_attributes,
    SDM_write,
)
from repro.core.ring import EdgeChunk
from repro.core import sdm_services
from repro.dtypes import DOUBLE
from repro.mesh import install_mesh_file, mesh_file_layout
from repro.mpi import mpirun

# ----------------------------------------------------------------- Figure 1
# edges: 0=(0,1)  1=(1,4)  2=(0,3)  3=(1,2)
EDGE1 = np.array([0, 1, 0, 1], dtype=np.int64)
EDGE2 = np.array([1, 4, 3, 2], dtype=np.int64)
X = np.array([10.0, 11.0, 12.0, 13.0])            # data per edge
Y = np.array([100.0, 101.0, 102.0, 103.0, 104.0])  # data per node
PARTITIONING_VECTOR = np.array([0, 1, 1, 0, 1], dtype=np.int64)
TOTAL_EDGES, TOTAL_NODES = 4, 5
MAX_STEP = 2


def services(sim, machine):
    built = sdm_services()(sim, machine)
    install_mesh_file(
        built["fs"], "uns3d.msh", EDGE1, EDGE2, {"x": X}, {"y": Y}
    )
    return built


def program(ctx):
    layout = mesh_file_layout(TOTAL_EDGES, TOTAL_NODES, ["x"], ["y"])

    # ------------------------------------------------------------ Figure 2
    sdm = SDM_initialize(ctx, "quickstart", organization=Organization.LEVEL_2)
    result = SDM_make_datalist(sdm, 2, ["p", "q"])
    SDM_associate_attributes(
        sdm, 2, result, data_type=DOUBLE, global_size=TOTAL_NODES
    )
    handle = SDM_set_attributes(sdm, 2, result)

    # ------------------------------------------------------------ Figure 3
    SDM_make_importlist(
        sdm, 4, ["edge1", "edge2", "x", "y"], file_name="uns3d.msh",
        index_names=["edge1", "edge2"],
    )
    chunk = sdm.import_index(
        "edge1", "edge2", layout.offset("edge1"), layout.offset("edge2"),
        TOTAL_EDGES,
    )
    vector = SDM_partition_table(sdm, PARTITIONING_VECTOR)
    local = SDM_partition_index(sdm, PARTITIONING_VECTOR, chunk)
    local_edges = SDM_partition_index_size(sdm)
    local_nodes = SDM_partition_data_size(sdm)
    SDM_index_registry(sdm, local)

    x_local = SDM_import(
        sdm, "x", layout.offset("x"), TOTAL_EDGES, map_array=local.edge_map
    )
    y_local = SDM_import(
        sdm, "y", layout.offset("y"), TOTAL_NODES, map_array=local.node_map
    )
    SDM_release_importlist(sdm, 4)

    # Compute and write results p, q ordered by global node number.
    SDM_data_view(sdm, handle, "p", local.owned_nodes)
    SDM_data_view(sdm, handle, "q", local.owned_nodes)
    for t in range(MAX_STEP):
        p = local.owned_nodes * 1.0 + t       # stand-in "results"
        q = local.owned_nodes * 2.0 + t
        SDM_write(sdm, handle, "p", t, p)
        SDM_write(sdm, handle, "q", t, q)

    # Read the last step back through the same views.
    p_back = np.empty(len(local.owned_nodes))
    SDM_read(sdm, handle, "p", MAX_STEP - 1, p_back)
    SDM_finalize(sdm, handle)

    return dict(
        owned_nodes=local.owned_nodes.tolist(),
        edge_map=local.edge_map.tolist(),
        node_map=local.node_map.tolist(),
        local_edges=local_edges,
        local_nodes=local_nodes,
        x_local=x_local.tolist(),
        y_local=y_local.tolist(),
        p_back=p_back.tolist(),
        vector=vector.tolist(),
    )


def main():
    job = mpirun(program, nprocs=2, services=services)
    print("=== Figure 1 worked example on 2 simulated processes ===\n")
    for rank, r in enumerate(job.values):
        print(f"process {rank}:")
        print(f"  owned nodes        : {r['owned_nodes']}")
        print(f"  partitioned edges  : {r['edge_map']}   (ghost edges replicated)")
        print(f"  node map (+ghosts) : {r['node_map']}")
        print(f"  x (edge data)      : {r['x_local']}")
        print(f"  y (node data)      : {r['y_local']}")
        print(f"  p read back (t={MAX_STEP - 1})  : {r['p_back']}")
        print()
    fs = job.services["fs"]
    fname = checkpoint_file_name("quickstart", 1, "p", 0, Organization.LEVEL_2)
    print(f"files in the simulated PFS: {fs.list_files()}")
    whole = fs.lookup(fname).store.read(0, 2 * TOTAL_NODES * 8).view(np.float64)
    print(f"{fname!r} contents (2 timesteps x {TOTAL_NODES} nodes): {whole.tolist()}")
    print(f"\nvirtual time elapsed: {job.elapsed * 1e3:.2f} ms "
          f"(simulated {job.nprocs}-process Origin2000)")
    # The paper's Figure 1 result, verified:
    assert job.values[0]["edge_map"] == [0, 2]
    assert job.values[1]["edge_map"] == [0, 1, 3]
    assert job.values[0]["node_map"] == [0, 1, 3]
    assert job.values[1]["node_map"] == [0, 1, 2, 4]
    print("\nmatches the paper's Figure 1 partitioning. OK")


if __name__ == "__main__":
    main()
