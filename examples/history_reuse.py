"""History files across application runs (the paper's key optimization).

Simulates the workflow of a scientist running the same problem repeatedly:

1. a first run pays the full edge import + ring distribution, and registers
   the index distribution in a history file (asynchronously);
2. a second run with the same problem size and process count finds the
   history in ``index_table`` and replaces the whole distribution with one
   contiguous read per rank;
3. a run on a different process count cannot use the history (the paper's
   limitation) and falls back to the ring;
4. pre-creating histories "for the various numbers of processes of
   interest" makes every subsequent count fast.

The file system and metadata database persist between runs via snapshots —
files and MySQL outlive any one mpirun, and so do ours.

Run:  python examples/history_reuse.py
"""

from repro.apps.fun3d import Fun3dRunConfig, run_fun3d_sdm
from repro.bench import scaled_machine
from repro.bench.figures import PAPER
from repro.config import origin2000
from repro.core import sdm_services, snapshot_services
from repro.mesh import fun3d_like_problem, install_mesh_file
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

CELLS = 8


def main():
    problem = fun3d_like_problem(CELLS)
    mesh = problem.mesh
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    # Time-dilate the machine so the toy mesh behaves like the paper's 18M
    # edges (fixed per-operation costs keep their true relative weight).
    scale = PAPER["fun3d_edges"] / mesh.n_edges
    machine = scaled_machine(origin2000(), scale)
    print(f"problem: {mesh.n_edges} edges / {mesh.n_nodes} nodes "
          f"(dilated x{scale:.0f} -> paper-equivalent times)\n")

    def services(seed_from=None):
        base = sdm_services(seed_from=seed_from)

        def factory(sim, machine):
            built = base(sim, machine)
            if not built["fs"].exists("uns3d.msh"):
                install_mesh_file(
                    built["fs"], "uns3d.msh", mesh.edge1, mesh.edge2,
                    problem.edge_arrays, problem.node_arrays,
                )
            return built

        return factory

    # wait_history blocks (in virtual time) on the background writer via
    # HistoryRegistration.wait() — read-your-writes before the snapshot,
    # with no busy-checking of the .done flag.
    cfg = Fun3dRunConfig(timesteps=1, checkpoint_every=2,
                         register_history=True, wait_history=True)

    def run(nprocs, snap, label):
        part = multilevel_kway(g, nprocs, seed=1)
        job = mpirun(
            lambda ctx: run_fun3d_sdm(ctx, problem, part, cfg),
            nprocs, machine=machine, services=services(snap),
        )
        hit = all(r.used_history for r in job.values)
        t = job.phase_max("import") + job.phase_max("index_distri")
        print(f"  {label:<42} P={nprocs:<3} "
              f"{'history HIT ' if hit else 'history miss'}  "
              f"import+distri = {t:8.2f} s")
        return snapshot_services(job), hit, t

    print("run 1: cold start, registers history for P=8")
    snap, hit, t_cold = run(8, None, "first run (ring distribution)")
    assert not hit

    print("\nrun 2: same problem size, same process count")
    snap, hit, t_warm = run(8, snap, "second run (reads history file)")
    assert hit and t_warm < t_cold

    print("\nrun 3: different process count -> history unusable (paper's "
          "limitation)")
    snap, hit, _ = run(4, snap, "P=4 run (falls back to the ring)")
    assert not hit  # but it registered a P=4 history as a side effect...

    print("\nrun 4: ...so now both process counts of interest have histories")
    snap, hit, _ = run(4, snap, "P=4 rerun")
    assert hit
    snap, hit, _ = run(8, snap, "P=8 rerun")
    assert hit

    print(f"\nhistory sped up import+distribution by "
          f"{t_cold / t_warm:.1f}x at P=8. OK")


if __name__ == "__main__":
    main()
