"""FUN3D-style unstructured CFD with SDM checkpointing (paper Section 4.1).

Builds a scaled synthetic tetrahedral mesh, partitions it with the
multilevel (METIS-like) partitioner, and runs the full SDM-ported FUN3D
template on 16 simulated ranks: import + ring index distribution, edge-based
flux sweeps with ghost updates, and five-dataset checkpoints under each of
the three file organizations.  Prints a timing/bandwidth comparison and
verifies read-back.

Run:  python examples/fun3d_checkpointing.py
"""

import numpy as np

from repro.apps.fun3d import Fun3dRunConfig, run_fun3d_sdm
from repro.config import origin2000
from repro.core import Organization, sdm_services
from repro.mesh import fun3d_like_problem, install_mesh_file
from repro.mpi import mpirun
from repro.partition import Graph, edge_cut, ghost_stats, imbalance, multilevel_kway

NPROCS = 16
CELLS = 10
TIMESTEPS = 4
CHECKPOINT_EVERY = 2
MB = 1024.0 * 1024.0


def main():
    print(f"building synthetic FUN3D mesh ({CELLS}^3 box)...")
    problem = fun3d_like_problem(CELLS)
    mesh = problem.mesh
    print(f"  {mesh.n_nodes} nodes, {mesh.n_edges} edges "
          f"(edge/node ratio {mesh.n_edges / mesh.n_nodes:.1f})")
    print(f"  import volume: {problem.import_bytes / MB:.1f} MB")

    print(f"\npartitioning nodes into {NPROCS} parts (multilevel k-way)...")
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    part = multilevel_kway(g, NPROCS, seed=7)
    stats = ghost_stats(mesh.edge1, mesh.edge2, part, NPROCS)
    print(f"  edge cut {edge_cut(g, part)}, imbalance "
          f"{imbalance(part, NPROCS):.3f}, "
          f"ghost nodes {stats.total_ghosts}, "
          f"replicated edges {stats.replicated_edges}")

    def services(sim, machine):
        built = sdm_services()(sim, machine)
        install_mesh_file(
            built["fs"], "uns3d.msh", mesh.edge1, mesh.edge2,
            problem.edge_arrays, problem.node_arrays,
        )
        return built

    print(f"\nrunning {TIMESTEPS} timesteps on {NPROCS} simulated ranks, "
          f"checkpoint every {CHECKPOINT_EVERY}:")
    header = (f"  {'organization':<12} {'import(s)':>10} {'ring(s)':>8} "
              f"{'write(s)':>9} {'read(s)':>8} {'files':>6}")
    print(header)
    for level in Organization:
        cfg = Fun3dRunConfig(
            organization=level, timesteps=TIMESTEPS,
            checkpoint_every=CHECKPOINT_EVERY,
            register_history=False, read_back=True,
        )

        def program(ctx, cfg=cfg):
            return run_fun3d_sdm(ctx, problem, part, cfg)

        job = mpirun(program, NPROCS, machine=origin2000(), services=services)
        n_files = len([f for f in job.services["fs"].list_files()
                       if f != "uns3d.msh"])
        checks = {r.checksum for r in job.values if r.checksum}
        reads = [r.read_checksum for r in job.values]
        assert all(rc is not None and np.isfinite(rc) for rc in reads)
        print(f"  level {level.value:<6} "
              f"{job.phase_max('import'):>10.3f} "
              f"{job.phase_max('index_distri'):>8.3f} "
              f"{job.phase_max('write'):>9.3f} "
              f"{job.phase_max('read'):>8.3f} "
              f"{n_files:>6}")
        del checks
    print("\nall organizations verified by read-back. OK")


if __name__ == "__main__":
    main()
