"""File organizations and the metadata database (paper Section 3.2, Fig 4).

Writes the same two-dataset group under levels 1, 2, and 3, then *inspects
the metadata database directly with SQL* to show what SDM recorded — the
run_table / access_pattern_table / execution_table flow of Figure 4 — and
demonstrates reading a dataset back in a later run using only the database
(no file names in user code).

Run:  python examples/file_organizations.py
"""

import numpy as np

from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.dtypes import DOUBLE
from repro.metadb import Database
from repro.mpi import mpirun

NPROCS = 4
GLOBAL = 64
TIMESTEPS = 3


def writer_program(level):
    def program(ctx):
        sdm = SDM(ctx, "demo", organization=level)
        result = sdm.make_datalist(["p", "q"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        lo = ctx.rank * (GLOBAL // ctx.size)
        mine = np.arange(lo, lo + GLOBAL // ctx.size, dtype=np.int64)
        sdm.data_view(handle, "p", mine)
        sdm.data_view(handle, "q", mine)
        for t in range(TIMESTEPS):
            sdm.write(handle, "p", t, mine * 1.0 + t)
            sdm.write(handle, "q", t, mine * -1.0 - t)
        sdm.finalize(handle)
        return sdm.runid

    return program


def main():
    for level in Organization:
        job = mpirun(writer_program(level), NPROCS, services=sdm_services())
        fs = job.services["fs"]
        files = fs.list_files()
        sizes = {f: fs.lookup(f).size for f in files}
        print(f"level {level.value}: {len(files)} file(s)")
        for f in files:
            print(f"    {f:<28} {sizes[f]:>8} bytes")

    # Inspect the metadata database of a level-3 run with raw SQL.
    print("\nmetadata recorded for the level-3 run (raw SQL):")
    job = mpirun(writer_program(Organization.LEVEL_3), NPROCS,
                 services=sdm_services())
    db: Database = job.services["db"]
    for sql in (
        "SELECT runid, application, num_timesteps FROM run_table",
        "SELECT dataset, basic_pattern, data_type, global_size "
        "FROM access_pattern_table WHERE runid = 1",
        "SELECT dataset, timestep, file_name, file_offset "
        "FROM execution_table WHERE runid = 1 ORDER BY file_offset",
    ):
        print(f"  sql> {sql}")
        for row in db.execute(sql):
            print(f"       {row}")

    # A later run reads timestep 1 of 'q' back, locating it purely through
    # the database.
    snap = snapshot_services(job)

    def reader(ctx):
        sdm = SDM(ctx, "demo-reader", organization=Organization.LEVEL_3)
        result = sdm.make_datalist(["q"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
        handle = sdm.set_attributes(result)
        lo = ctx.rank * (GLOBAL // ctx.size)
        mine = np.arange(lo, lo + GLOBAL // ctx.size, dtype=np.int64)
        sdm.data_view(handle, "q", mine)
        buf = np.empty(len(mine))
        sdm.read(handle, "q", 1, buf, runid=1)  # previous run's data
        sdm.finalize(handle)
        return buf

    job2 = mpirun(reader, NPROCS, services=sdm_services(seed_from=snap))
    got = np.concatenate(job2.values)
    np.testing.assert_allclose(got, -np.arange(GLOBAL) - 1.0)
    print("\ncross-run read of q@t=1 via execution_table verified. OK")


if __name__ == "__main__":
    main()
