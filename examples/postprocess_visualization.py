"""Post-processing a finished run: the visualization-support workflow.

The paper's future work plans SDM support for visualization applications —
tools that start *after* the simulation, with nothing but the metadata
database, and pull out the data they need.  This example:

1. runs the RT template for several steps (the "simulation job");
2. starts a *separate* post-processing job against the snapshotted file
   system + database, which uses :class:`SDMCatalog` to discover what
   exists — no file names or sizes in the code;
3. splits its ranks into two working groups with ``comm.split`` (node-field
   analysts vs triangle-field analysts), each reading its datasets
   collectively and computing per-step statistics;
4. prints the interface growth curve and an I/O report.

Run:  python examples/postprocess_visualization.py
"""

import numpy as np

from repro.apps.rt import RTRunConfig, run_rt_sdm
from repro.bench.iostats import io_report
from repro.core import Organization, sdm_services, snapshot_services
from repro.core.catalog import SDMCatalog
from repro.mesh import rt_like_problem
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

SIM_PROCS = 8
POST_PROCS = 4
CELLS = 8
TIMESTEPS = 5


def main():
    # ---------------------------------------------------- simulation job --
    problem = rt_like_problem(CELLS)
    g = Graph.from_edges(
        problem.mesh.n_nodes, problem.mesh.edge1, problem.mesh.edge2
    )
    part = multilevel_kway(g, SIM_PROCS, seed=2)

    print(f"simulation: RT on {SIM_PROCS} ranks, {TIMESTEPS} steps...")
    sim_job = mpirun(
        lambda ctx: run_rt_sdm(
            ctx, problem, part,
            RTRunConfig(organization=Organization.LEVEL_2, timesteps=TIMESTEPS),
        ),
        SIM_PROCS, services=sdm_services(),
    )
    snap = snapshot_services(sim_job)
    print(f"  wrote {sum(r.bytes_written for r in sim_job.values) / 2**20:.2f} "
          f"MB; snapshot carries {len(snap.files)} files + the database\n")

    # ------------------------------------------------ post-processing job --
    def post(ctx):
        catalog = SDMCatalog.attach(ctx)
        runs = catalog.runs()
        run = runs[-1]
        datasets = {d.name: d for d in catalog.datasets(run.runid)}
        # Two analyst groups: even ranks take nodes, odd ranks triangles.
        role = ctx.rank % 2
        team = ctx.comm.split(color=role, key=ctx.rank)
        name = "node_data" if role == 0 else "triangle_data"
        rec = datasets[name]
        steps = catalog.timesteps(run.runid, name)
        stats = []
        for t in steps:
            # Each team reads its dataset collectively (block split).
            base = rec.global_size // team.size
            counts = [base + (1 if r < rec.global_size % team.size else 0)
                      for r in range(team.size)]
            start = sum(counts[: team.rank])
            mine = np.arange(start, start + counts[team.rank], dtype=np.int64)
            # Swap in the team communicator for the collective read.
            saved = ctx.comm
            ctx.comm = team
            try:
                vals = catalog.read_slice(run.runid, name, t, mine)
            finally:
                ctx.comm = saved
            local_max = float(np.abs(vals).max()) if len(vals) else 0.0
            stats.append(team.allreduce(local_max, op=lambda a, b: max(a, b)))
        return role, name, steps, stats

    print(f"post-processing: {POST_PROCS} ranks discover and read the run "
          f"through the catalog...")
    post_job = mpirun(post, POST_PROCS, services=sdm_services(seed_from=snap))

    role0 = next(v for v in post_job.values if v[0] == 0)
    role1 = next(v for v in post_job.values if v[0] == 1)
    print("\n  interface growth (max |amplitude| per checkpoint):")
    print(f"  {'step':>6} {'node field':>12} {'triangle field':>15}")
    for i, t in enumerate(role0[2]):
        print(f"  {t:>6} {role0[3][i]:>12.5f} {role1[3][i]:>15.5f}")
    growth = role0[3][-1] / role0[3][0]
    assert growth > 1.5, "instability should grow"
    print(f"\n  amplitude grew {growth:.1f}x over the run "
          f"(Rayleigh-Taylor growth, as written by the simulation)")

    print("\npost-processing I/O report:")
    report = io_report(post_job)
    for line in report.render().splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
