PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

## crash-schedule rotation seed for the fault property harness: each
## value sweeps a different (nranks, level) slice of the replay matrix
FAULT_SEED ?= 0
export FAULT_SEED

.PHONY: test test-metadb test-datapath test-maintenance test-mvcc \
    test-policy test-faults lint verify-collectives \
    bench bench-metadb bench-datapath bench-maintenance bench-policy \
    perfcheck

## tier-1 verify: static SPMD lint first (cheapest signal), the metadb
## subset next, then everything else, then the property harnesses again
## under the runtime collective sanitizer, then the crash-recovery tier
test: lint test-metadb
	$(PYTHON) -m pytest -x -q --ignore=tests/metadb \
	    --ignore=tests/properties/test_metadb_index_property.py \
	    --ignore=tests/properties/test_sql_property.py \
	    --ignore=tests/properties/test_fault_property.py
	$(MAKE) verify-collectives
	$(MAKE) test-faults

## crash tolerance: kernel fault injection, recovery-protocol unit
## tests, cross-job crash/restart scenarios, the crash-at-every-point
## property harness (FAULT_SEED rotates its rank/level matrix), and the
## zero-overhead guard for the fault machinery itself
test-faults:
	$(PYTHON) -m pytest tests/simt/test_faults.py tests/metadb/test_recovery.py \
	    tests/core/test_maintenance_faults.py \
	    tests/properties/test_fault_property.py -q
	$(PYTHON) benchmarks/perfcheck_faults.py

## spmdlint: flag collectives reachable on only some ranks' paths
## (rules + suppression syntax in docs/analysis.md); a new unsuppressed
## finding fails the build
lint:
	$(PYTHON) -m repro.analysis -q

## re-run the datapath/maintenance suites and property harnesses with
## SPMD_VERIFY=1: every job cross-validates per-rank collective
## sequences, so a divergence the static pass cannot see fails here
verify-collectives:
	$(PYTHON) -m pytest tests/analysis -q
	$(PYTHON) -m pytest tests/core/test_datapath.py tests/core/test_maintenance.py \
	    tests/properties/test_datapath_property.py \
	    tests/properties/test_mvcc_property.py --spmd-verify -q

## MVCC concurrency surface: pinned snapshot reads vs background flips,
## lease conflicts, epoch/pin/extent leak audits (docs/concurrency.md)
test-mvcc:
	$(PYTHON) -m pytest tests/properties/test_mvcc_property.py -q

## metadb engine/planner unit tests + the scan-equivalence property harness
test-metadb:
	$(PYTHON) -m pytest tests/metadb tests/properties/test_metadb_index_property.py tests/properties/test_sql_property.py -q

## storage-order data path: chunked/canonical/reorganize unit tests + the
## cross-order read-equivalence property harness
test-datapath:
	$(PYTHON) -m pytest tests/core/test_datapath.py tests/properties/test_datapath_property.py -q

## maintenance tier: background reorganization, compaction, snapshot-
## surviving queues, index-block cache + the maintenance property dimension
test-maintenance:
	$(PYTHON) -m pytest tests/core/test_maintenance.py tests/properties/test_datapath_property.py -q

## self-tuning policy tier: planner calibration, adaptive coalesce_gap
## derivation, maintenance triggers (promotion, autocompaction, worker
## throttling) + the adaptive read-equivalence dimension of the datapath
## property harness
test-policy:
	$(PYTHON) -m pytest tests/core/test_policy.py tests/properties/test_datapath_property.py -q

## metadata query-path ablation (scan vs hash vs ordered vs composite,
## parse vs statement cache); emits BENCH_metadb.json for cross-PR tracking
bench-metadb:
	METADB_BENCH_JSON=BENCH_metadb.json $(PYTHON) -m pytest benchmarks/bench_ablation_metadb.py --benchmark-only -q

## storage-order ablation (chunked vs canonical writes, reorganize cost,
## read price of each representation, coalesced-read gap + run counts);
## emits BENCH_datapath.json
bench-datapath:
	DATAPATH_BENCH_JSON=BENCH_datapath.json $(PYTHON) -m pytest benchmarks/bench_ablation_datapath.py --benchmark-only -q
	$(PYTHON) benchmarks/perfcheck_datapath.py BENCH_datapath.json

## policy-tier ablation (adaptive planner/gap/maintenance vs a grid of
## static settings per knob); emits BENCH_policy.json
bench-policy:
	POLICY_BENCH_JSON=BENCH_policy.json $(PYTHON) -m pytest benchmarks/bench_ablation_policy.py --benchmark-only -q
	$(PYTHON) benchmarks/perfcheck_policy.py BENCH_policy.json

## guard the committed BENCH JSONs: fails if the cold chunked read
## exceeds READ_GAP_MAX (1.3x) of canonical at 4/8 ranks, the chunked
## read's submitted run count regresses toward O(elements), or an
## adaptive policy falls below ADAPTIVE_WIN_MIN (1.0x) of its best
## static setting
perfcheck:
	$(PYTHON) benchmarks/perfcheck_datapath.py BENCH_datapath.json
	$(PYTHON) benchmarks/perfcheck_policy.py BENCH_policy.json

## maintenance ablation (sync vs background reorganize critical path,
## cold vs warm chunked-read index cache, compaction file sizes); emits
## BENCH_maintenance.json
bench-maintenance:
	MAINTENANCE_BENCH_JSON=BENCH_maintenance.json $(PYTHON) -m pytest benchmarks/bench_ablation_maintenance.py --benchmark-only -q

## every paper-reproduction benchmark (tracked-JSON ablations first; the
## datapath ablation runs perfcheck against its regenerated JSON).
## Benchmarks are passed as explicit file arguments: bench_*.py does not
## match pytest's default test_*.py discovery pattern, so a bare
## `pytest benchmarks/` collects nothing.
TRACKED_BENCHES := benchmarks/bench_ablation_metadb.py \
    benchmarks/bench_ablation_datapath.py \
    benchmarks/bench_ablation_maintenance.py \
    benchmarks/bench_ablation_policy.py
bench: bench-metadb bench-datapath bench-maintenance bench-policy
	$(PYTHON) -m pytest --benchmark-only -q \
	    $(filter-out $(TRACKED_BENCHES),$(wildcard benchmarks/bench_*.py))
	$(MAKE) perfcheck
