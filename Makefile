PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-metadb bench

## tier-1 verify: the full unit/property suite
test:
	$(PYTHON) -m pytest -x -q

## metadata query-path ablation (scan vs index, parse vs statement cache)
bench-metadb:
	$(PYTHON) -m pytest benchmarks/bench_ablation_metadb.py --benchmark-only -q

## every paper-reproduction benchmark
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
